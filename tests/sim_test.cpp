// Tests for the simulator: coroutine scheduling, the three register
// semantic models, adversary choice mechanics, and determinism.
#include <gtest/gtest.h>

#include "checker/lin_checker.hpp"
#include "checker/wsl_checker.hpp"
#include "sim/adversary.hpp"
#include "sim/scheduler.hpp"
#include "util/assert.hpp"

namespace rlt::sim {
namespace {

Task write_two(Proc& self, RegId reg, Value a, Value b) {
  co_await self.write(reg, a);
  co_await self.write(reg, b);
}

Task read_two(Proc& self, RegId reg, Value* out1, Value* out2) {
  *out1 = co_await self.read(reg);
  *out2 = co_await self.read(reg);
}

Task flip_some(Proc& self, int count, int* ones) {
  for (int i = 0; i < count; ++i) {
    *ones += co_await self.flip_coin();
    co_await self.yield();
  }
}

TEST(Scheduler, AtomicRegisterBasicSemantics) {
  Scheduler sched(1);
  sched.add_register(0, Semantics::kAtomic, 5);
  Value v1 = -1;
  Value v2 = -1;
  sched.add_process("w", [](Proc& p) { return write_two(p, 0, 10, 20); });
  sched.add_process("r",
                    [&](Proc& p) { return read_two(p, 0, &v1, &v2); });
  RoundRobinAdversary adv;
  EXPECT_EQ(sched.run(adv), RunOutcome::kAllDone);
  // Round-robin: w writes 10, r reads 10, w writes 20, r reads 20.
  EXPECT_EQ(v1, 10);
  EXPECT_EQ(v2, 20);
  sched.global_history().validate();
}

TEST(Scheduler, DeterministicUnderSameSeed) {
  const auto run = [](std::uint64_t seed) {
    Scheduler sched(seed);
    sched.add_register(0, Semantics::kLinearizable, 0);
    Value v1 = 0;
    Value v2 = 0;
    sched.add_process("w", [](Proc& p) { return write_two(p, 0, 1, 2); });
    sched.add_process("r",
                      [&](Proc& p) { return read_two(p, 0, &v1, &v2); });
    RandomAdversary adv(seed);
    sched.run(adv);
    return sched.global_history().to_string();
  };
  EXPECT_EQ(run(42), run(42));
  // (Different seeds usually differ, but that is not guaranteed.)
}

TEST(Scheduler, CoinFlipsAreLoggedForTheAdversary) {
  Scheduler sched(7);
  int ones = 0;
  sched.add_process("f", [&](Proc& p) { return flip_some(p, 20, &ones); });
  RoundRobinAdversary adv;
  EXPECT_EQ(sched.run(adv), RunOutcome::kAllDone);
  EXPECT_EQ(sched.coin_log().size(), 20u);
  int logged_ones = 0;
  for (const CoinRecord& c : sched.coin_log()) logged_ones += c.outcome;
  EXPECT_EQ(logged_ones, ones);
}

TEST(Scheduler, ActionCapStopsRun) {
  Scheduler sched(1);
  sched.add_register(0, Semantics::kAtomic, 0);
  Value a = 0;
  Value b = 0;
  sched.add_process("r", [&](Proc& p) { return read_two(p, 0, &a, &b); });
  RoundRobinAdversary adv;
  EXPECT_EQ(sched.run(adv, 1), RunOutcome::kActionCap);
}

TEST(LinearizableModel, OperationsOverlapAndBlock) {
  Scheduler sched(1);
  sched.add_register(0, Semantics::kLinearizable, 0);
  Value v1 = -1;
  Value v2 = -1;
  sched.add_process("w", [](Proc& p) { return write_two(p, 0, 10, 20); });
  sched.add_process("r", [&](Proc& p) { return read_two(p, 0, &v1, &v2); });
  // Step both processes once: both ops invoked, both processes blocked.
  sched.apply(Action::step(0));
  sched.apply(Action::step(1));
  EXPECT_TRUE(sched.process_blocked(0));
  EXPECT_TRUE(sched.process_blocked(1));
  EXPECT_EQ(sched.pending_ops().size(), 2u);
}

TEST(LinearizableModel, ReadChoicesEnumerateFeasibleValues) {
  Scheduler sched(1);
  sched.add_register(0, Semantics::kLinearizable, 0);
  Value v1 = -1;
  Value v2 = -1;
  sched.add_process("w", [](Proc& p) { return write_two(p, 0, 10, 20); });
  sched.add_process("r", [&](Proc& p) { return read_two(p, 0, &v1, &v2); });
  sched.apply(Action::step(0));  // write(10) pending
  sched.apply(Action::step(1));  // read pending
  const auto pending = sched.pending_ops();
  const int read_op = pending[1].op_id;
  auto choices = sched.choices_for(read_op);
  ASSERT_EQ(choices.size(), 2u);  // initial 0 or concurrent 10
  std::set<Value> values;
  for (const auto& c : choices) values.insert(c.value);
  EXPECT_EQ(values, (std::set<Value>{0, 10}));
}

TEST(LinearizableModel, OffLineFreedomSurvivesWriteCompletion) {
  // The crux of Theorem 6: after BOTH concurrent writes complete, a read
  // that overlapped them can still be told either value.
  Scheduler sched(1);
  sched.add_register(0, Semantics::kLinearizable, 0);
  Value v1 = -1;
  Value v2 = -1;
  sched.add_process("w1", [](Proc& p) { return write_two(p, 0, 10, 11); });
  sched.add_process("w2", [](Proc& p) { return write_two(p, 0, 20, 21); });
  sched.add_process("r", [&](Proc& p) { return read_two(p, 0, &v1, &v2); });
  sched.apply(Action::step(0));  // w1: write(10) pending
  sched.apply(Action::step(1));  // w2: write(20) pending
  sched.apply(Action::step(2));  // read pending (overlaps both)
  // Complete both writes.
  auto respond_write = [&](ProcessId p) {
    for (const auto& info : sched.pending_ops()) {
      if (info.process == p) {
        auto choices = sched.choices_for(info.op_id);
        ASSERT_EQ(choices.size(), 1u);
        sched.apply(Action::respond(p, info.op_id, choices[0]));
        return;
      }
    }
    FAIL() << "no pending op for p" << p;
  };
  respond_write(0);
  respond_write(1);
  // The read may return the initial value (it was invoked before either
  // write completed) or either write's value — the adversary decides the
  // order of the two concurrent writes off-line, AFTER their completion.
  const int read_op = sched.pending_ops()[0].op_id;
  std::set<Value> values;
  for (const auto& c : sched.choices_for(read_op)) values.insert(c.value);
  EXPECT_EQ(values, (std::set<Value>{0, 10, 20}));
}

TEST(WslModel, WriteResponseFreezesOrder) {
  // Same setup, WSL semantics: completing w1 with commitment [w1] means
  // any read now (after both writes complete) can only see w1 last if
  // the adversary also committed w2 first — the choice set shrinks.
  Scheduler sched(1);
  sched.add_register(0, Semantics::kWriteStrong, 0);
  Value v1 = -1;
  Value v2 = -1;
  sched.add_process("w1", [](Proc& p) { return write_two(p, 0, 10, 11); });
  sched.add_process("w2", [](Proc& p) { return write_two(p, 0, 20, 21); });
  sched.add_process("r", [&](Proc& p) { return read_two(p, 0, &v1, &v2); });
  sched.apply(Action::step(0));
  sched.apply(Action::step(1));
  sched.apply(Action::step(2));
  // Respond w1's write committing only [w1] (w2 left uncommitted, hence
  // ordered after w1 forever).
  const auto pending = sched.pending_ops();
  const int w1_op = pending[0].op_id;
  const int w2_op = pending[1].op_id;
  const int r_op = pending[2].op_id;
  std::optional<ResponseChoice> w1_only;
  for (auto& c : sched.choices_for(w1_op)) {
    if (c.commit_extension == std::vector<int>{w1_op}) w1_only = c;
  }
  ASSERT_TRUE(w1_only.has_value());
  sched.apply(Action::respond(0, w1_op, *w1_only));
  // Respond w2 (it must append after w1).
  auto w2_choices = sched.choices_for(w2_op);
  ASSERT_FALSE(w2_choices.empty());
  sched.apply(Action::respond(1, w2_op, w2_choices[0]));
  // The read overlapped everything, but w1-before-w2 is now frozen:
  // it can return 0 (before both), 10 (between), or 20 (after) — BUT a
  // second read after it could never see 10 then 20 reversed.  Check the
  // first read's choice values contain 20 and 10 but a follow-up
  // constraint holds: respond with 20, then the next read can only be 20.
  std::optional<ResponseChoice> twenty;
  for (auto& c : sched.choices_for(r_op)) {
    if (c.value == 20) twenty = c;
  }
  ASSERT_TRUE(twenty.has_value());
  sched.apply(Action::respond(2, r_op, *twenty));
  sched.apply(Action::step(2));  // invoke second read
  const int r2_op = sched.pending_ops()[0].op_id;
  std::set<Value> values;
  for (auto& c : sched.choices_for(r2_op)) values.insert(c.value);
  EXPECT_EQ(values, (std::set<Value>{20}));
}

TEST(WslModel, CommittedOrderSurvivesCollapse) {
  // Run a full write-write-read cycle to quiescence; the model collapses
  // its window, and the next read must see the committed final value.
  Scheduler sched(3);
  sched.add_register(0, Semantics::kWriteStrong, 0);
  Value v1 = -1;
  Value v2 = -1;
  sched.add_process("w", [](Proc& p) { return write_two(p, 0, 10, 20); });
  sched.add_process("r", [&](Proc& p) { return read_two(p, 0, &v1, &v2); });
  RandomAdversary adv(99);
  EXPECT_EQ(sched.run(adv), RunOutcome::kAllDone);
  // Reads are monotone: v1=10 implies v2 in {10, 20}; v1=20 implies v2=20.
  if (v1 == 20) {
    EXPECT_EQ(v2, 20);
  }
  sched.global_history().validate();
}

TEST(Models, RandomRunsProduceLinearizableHistories) {
  for (const Semantics sem :
       {Semantics::kAtomic, Semantics::kLinearizable,
        Semantics::kWriteStrong}) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      Scheduler sched(seed);
      sched.add_register(0, sem, 0);
      Value v1 = 0;
      Value v2 = 0;
      Value v3 = 0;
      Value v4 = 0;
      sched.add_process("w1",
                        [](Proc& p) { return write_two(p, 0, 10, 11); });
      sched.add_process("w2",
                        [](Proc& p) { return write_two(p, 0, 20, 21); });
      sched.add_process("r1",
                        [&](Proc& p) { return read_two(p, 0, &v1, &v2); });
      sched.add_process("r2",
                        [&](Proc& p) { return read_two(p, 0, &v3, &v4); });
      RandomAdversary adv(seed * 31);
      ASSERT_EQ(sched.run(adv), RunOutcome::kAllDone);
      const auto result = checker::check_linearizable(sched.global_history());
      ASSERT_TRUE(result.ok)
          << to_string(sem) << " seed " << seed << ": " << result.error;
    }
  }
}

TEST(Models, WslRunsProduceWslHistories) {
  // The WSL model's histories must pass the off-line Definition 4 check.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Scheduler sched(seed);
    sched.add_register(0, Semantics::kWriteStrong, 0);
    Value v1 = 0;
    Value v2 = 0;
    sched.add_process("w1", [](Proc& p) { return write_two(p, 0, 10, 11); });
    sched.add_process("w2", [](Proc& p) { return write_two(p, 0, 20, 21); });
    sched.add_process("r",
                      [&](Proc& p) { return read_two(p, 0, &v1, &v2); });
    RandomAdversary adv(seed * 17);
    ASSERT_EQ(sched.run(adv), RunOutcome::kAllDone);
    const auto result =
        checker::check_write_strong_linearizable(sched.global_history());
    ASSERT_TRUE(result.ok) << "seed " << seed << ": " << result.explanation;
  }
}

TEST(Scheduler, ExceptionsInProcessesPropagate) {
  Scheduler sched(1);
  sched.add_register(0, Semantics::kAtomic, 0);
  sched.add_process("bad", [](Proc& p) -> Task {
    co_await p.yield();
    RLT_CHECK_MSG(false, "deliberate failure");
  });
  RoundRobinAdversary adv;
  EXPECT_THROW(sched.run(adv), util::InvariantViolation);
}

TEST(Scheduler, RejectsDuplicateRegisters) {
  Scheduler sched(1);
  sched.add_register(0, Semantics::kAtomic, 0);
  EXPECT_THROW(sched.add_register(0, Semantics::kAtomic, 0),
               util::InvariantViolation);
}

TEST(FixedStepAdversary, ReplaysExactSchedule) {
  Scheduler sched(1);
  sched.add_register(0, Semantics::kAtomic, 0);
  Value v1 = -1;
  Value v2 = -1;
  sched.add_process("w", [](Proc& p) { return write_two(p, 0, 10, 20); });
  sched.add_process("r", [&](Proc& p) { return read_two(p, 0, &v1, &v2); });
  FixedStepAdversary adv({0, 0, 1, 1, 1});  // both writes, then reads
  EXPECT_EQ(sched.run(adv), RunOutcome::kStopped);
  EXPECT_EQ(v1, 20);
}

}  // namespace
}  // namespace rlt::sim
