// Tests for randomized consensus (task T), the drift shared coin, and
// the Corollary 9 composition A' = (Algorithm 1 ; A).
#include <gtest/gtest.h>

#include "consensus/composed.hpp"
#include "consensus/rand_consensus.hpp"
#include "sim/adversary.hpp"

namespace rlt::consensus {
namespace {

sim::Task run_consensus_proc(sim::Proc& p, ConsensusState& st, int i) {
  (void)co_await consensus_body(p, st, i);
}

sim::Task run_coin_proc(sim::Proc& p, SharedCoinConfig cfg, int i,
                        std::vector<int>* outs) {
  (*outs)[static_cast<std::size_t>(i)] = co_await shared_coin_flip(p, cfg, i);
}

ConsensusState run_consensus(const std::vector<int>& inputs,
                             std::uint64_t seed,
                             CoinKind coin = CoinKind::kLocal) {
  ConsensusConfig cfg;
  cfg.n = static_cast<int>(inputs.size());
  cfg.max_rounds = 64;
  cfg.coin = coin;
  sim::Scheduler sched(seed);
  ConsensusState state(cfg, inputs);
  setup_consensus(sched, cfg, sim::Semantics::kAtomic);
  for (int i = 0; i < cfg.n; ++i) {
    sched.add_process("c" + std::to_string(i), [&state, i](sim::Proc& p) {
      return run_consensus_proc(p, state, i);
    });
  }
  sim::RandomAdversary adv(seed * 31 + 7);
  sched.run(adv, 5'000'000);
  return state;
}

TEST(Consensus, UnanimousInputsDecideImmediately) {
  for (const int v : {0, 1}) {
    const ConsensusState st =
        run_consensus(std::vector<int>(4, v), 17 + static_cast<unsigned>(v));
    ASSERT_TRUE(st.all_decided());
    for (const int d : st.decisions) EXPECT_EQ(d, v);
    EXPECT_TRUE(st.validity());
  }
}

class ConsensusSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConsensusSweep, AgreementAndValidityAlwaysHold) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);
  std::vector<int> inputs(4);
  for (int& b : inputs) b = rng.flip();
  const ConsensusState st = run_consensus(inputs, seed);
  EXPECT_TRUE(st.agreement()) << "seed " << seed;
  EXPECT_TRUE(st.validity()) << "seed " << seed;
  EXPECT_TRUE(st.all_decided()) << "seed " << seed << " (cap="
                                << st.hit_round_cap << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsensusSweep,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(Consensus, SharedCoinVariantAlsoDecides) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed);
    std::vector<int> inputs(3);
    for (int& b : inputs) b = rng.flip();
    const ConsensusState st = run_consensus(inputs, seed, CoinKind::kShared);
    EXPECT_TRUE(st.agreement()) << "seed " << seed;
    EXPECT_TRUE(st.validity()) << "seed " << seed;
    EXPECT_TRUE(st.all_decided()) << "seed " << seed;
  }
}

TEST(Consensus, DecisionRoundsAreModest) {
  // With random scheduling the race usually closes within a few rounds.
  int total_rounds = 0;
  const int runs = 20;
  for (std::uint64_t seed = 100; seed < 100 + runs; ++seed) {
    const ConsensusState st = run_consensus({0, 1, 0, 1}, seed);
    EXPECT_TRUE(st.all_decided());
    total_rounds += st.max_round_entered;
  }
  EXPECT_LT(total_rounds / runs, 20);
}

// ---------- shared coin ----------

TEST(SharedCoin, AllProcessesTerminateAndOftenAgree) {
  int agreements = 0;
  const int runs = 30;
  for (std::uint64_t seed = 1; seed <= runs; ++seed) {
    SharedCoinConfig cfg;
    cfg.n = 3;
    cfg.first_reg = 0;
    cfg.threshold_per_proc = 2;
    sim::Scheduler sched(seed);
    setup_shared_coin(sched, cfg, sim::Semantics::kAtomic);
    std::vector<int> outs(3, -1);
    for (int i = 0; i < 3; ++i) {
      sched.add_process("coin" + std::to_string(i),
                        [cfg, i, &outs](sim::Proc& p) {
                          return run_coin_proc(p, cfg, i, &outs);
                        });
    }
    sim::RandomAdversary adv(seed * 13);
    ASSERT_EQ(sched.run(adv, 2'000'000), sim::RunOutcome::kAllDone);
    for (const int o : outs) ASSERT_NE(o, -1);
    if (outs[0] == outs[1] && outs[1] == outs[2]) ++agreements;
  }
  // Weak shared coin: constant agreement probability.  Empirically the
  // drift coin agrees in the large majority of random runs.
  EXPECT_GE(agreements, runs / 2);
}

// ---------- Corollary 9 ----------

TEST(Corollary9, LinearizableGameRegistersBlockAPrime) {
  game::GameConfig gc;
  gc.n = 4;
  gc.max_rounds = 30;
  ConsensusConfig cc;
  cc.n = 4;
  const ComposedResult r = run_composed_scripted(
      gc, cc, sim::Semantics::kLinearizable,
      game::CommitStrategy::kRandomOrder, 5);
  EXPECT_FALSE(r.game_terminated);
  EXPECT_FALSE(r.consensus_started);
  EXPECT_FALSE(r.all_decided);
  EXPECT_EQ(r.game_rounds, 30);
}

TEST(Corollary9, WslGameRegistersLetAPrimeDecide) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    game::GameConfig gc;
    gc.n = 4;
    gc.max_rounds = 300;
    ConsensusConfig cc;
    cc.n = 4;
    const ComposedResult r = run_composed_scripted(
        gc, cc, sim::Semantics::kWriteStrong,
        game::CommitStrategy::kRandomOrder, seed);
    ASSERT_TRUE(r.game_terminated) << "seed " << seed;
    ASSERT_TRUE(r.consensus_started) << "seed " << seed;
    EXPECT_TRUE(r.all_decided) << "seed " << seed;
    EXPECT_TRUE(r.agreement) << "seed " << seed;
    EXPECT_TRUE(r.validity) << "seed " << seed;
  }
}

TEST(ConsensusRegression, TieDefector) {
  // Seed 29 of the composed-random sweep used to violate agreement: a
  // process whose own team already led the race compared the other team
  // against its own stale round, saw a spurious tie, coin-defected to the
  // trailing value and drove it two rounds ahead of the (frozen) winning
  // team.  The catch-up rule in consensus_body fixes this; this test
  // pins the exact failing execution plus a broad sweep around it.
  for (std::uint64_t seed = 25; seed <= 35; ++seed) {
    game::GameConfig gc;
    gc.n = 4;
    gc.max_rounds = 1000;
    ConsensusConfig cc;
    cc.n = 4;
    const ComposedResult r =
        run_composed_random(gc, cc, sim::Semantics::kAtomic, seed);
    ASSERT_TRUE(r.agreement) << "seed " << seed;
    ASSERT_TRUE(r.validity) << "seed " << seed;
  }
}

TEST(Corollary9Regression, ComposedRunsUseExactlyNProcesses) {
  // ComposedRun used to call setup_game — which adds its own n game
  // processes — AND add the n composed bodies, so A' ran with 2n
  // processes, two of each role.  The duplicate "host 0"s flipped
  // independent coins into C, and on schedules where the copies' coins
  // differed a player's line-23 read tripped the Lemma 18 runtime check
  // (~1.5% of random seeds at this config; 50/68/192 reproduced it).
  // With setup_game_registers the composed bodies are the only game
  // processes and every one of these runs must be clean.
  for (const std::uint64_t seed : {50u, 68u, 192u}) {
    game::GameConfig gc;
    gc.n = 4;
    gc.max_rounds = 64;
    ConsensusConfig cc;
    cc.n = 4;
    const ComposedResult r =
        run_composed_random(gc, cc, sim::Semantics::kAtomic, seed);
    EXPECT_TRUE(r.game_terminated) << "seed " << seed;
    EXPECT_TRUE(r.agreement && r.validity) << "seed " << seed;
  }
}

class ComposedRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ComposedRandomSweep, SafetyNeverViolated) {
  game::GameConfig gc;
  gc.n = 4;
  gc.max_rounds = 1000;
  ConsensusConfig cc;
  cc.n = 4;
  const ComposedResult r = run_composed_random(
      gc, cc, sim::Semantics::kAtomic, GetParam());
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
  EXPECT_TRUE(r.all_decided);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComposedRandomSweep,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(Corollary9, AtomicGameRegistersWorkUnderRandomSchedules) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    game::GameConfig gc;
    gc.n = 4;
    gc.max_rounds = 500;
    ConsensusConfig cc;
    cc.n = 4;
    const ComposedResult r = run_composed_random(
        gc, cc, sim::Semantics::kAtomic, seed);
    ASSERT_TRUE(r.game_terminated) << "seed " << seed;
    EXPECT_TRUE(r.all_decided) << "seed " << seed;
    EXPECT_TRUE(r.agreement && r.validity) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rlt::consensus
