// Tests for the streaming online checker (checker/stream_checker.hpp):
// unit behaviour of the incremental frontier, the bounded-memory
// guarantee, prefix-exact verdicts against a batch bisection oracle, and
// the differential suite that replays every sweep-family history through
// both checkers and demands verdict agreement.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "checker/lin_checker.hpp"
#include "checker/stream_checker.hpp"
#include "explore/explore.hpp"
#include "history/history.hpp"
#include "sweep/scenario.hpp"
#include "sweep/sweep.hpp"
#include "util/rng.hpp"

namespace rlt::checker {
namespace {

using history::History;
using history::kNoTime;
using history::OpRecord;
using history::Time;

int add(History& h, int process, OpKind kind, Value v, Time invoke,
        Time response) {
  OpRecord op;
  op.process = process;
  op.reg = 0;
  op.kind = kind;
  op.value = v;
  op.invoke = invoke;
  op.response = response;
  return h.add(op);
}

/// Same generator family as the solver oracle tests: short histories
/// with random interleavings and random read RESULTS, so a healthy
/// fraction of them are genuinely non-linearizable.
History random_history(util::Rng& rng, int max_ops) {
  History h;
  h.set_initial(0, 0);
  const int processes = 1 + static_cast<int>(rng.uniform(3));
  const int target_ops =
      1 + static_cast<int>(rng.uniform(static_cast<std::uint64_t>(max_ops)));
  std::vector<int> open_op(static_cast<std::size_t>(processes), -1);
  Time now = 0;
  int started = 0;
  while (true) {
    std::vector<int> can_invoke;
    std::vector<int> can_respond;
    for (int p = 0; p < processes; ++p) {
      if (open_op[static_cast<std::size_t>(p)] >= 0) can_respond.push_back(p);
      else if (started < target_ops) can_invoke.push_back(p);
    }
    if (can_invoke.empty() && can_respond.empty()) break;
    if (can_invoke.empty() && rng.chance(1, 4)) break;  // pending tail
    const bool invoke =
        !can_invoke.empty() && (can_respond.empty() || rng.chance(1, 2));
    ++now;
    if (invoke) {
      const int p = can_invoke[rng.uniform(can_invoke.size())];
      OpRecord op;
      op.process = p;
      op.reg = 0;
      op.kind = rng.chance(1, 2) ? OpKind::kWrite : OpKind::kRead;
      op.value = static_cast<Value>(rng.uniform(3));
      op.invoke = now;
      op.response = kNoTime;
      open_op[static_cast<std::size_t>(p)] = h.add(op);
      ++started;
    } else {
      const int p = can_respond[rng.uniform(can_respond.size())];
      h.complete_op(open_op[static_cast<std::size_t>(p)],
                    static_cast<Value>(rng.uniform(3)), now);
      open_op[static_cast<std::size_t>(p)] = -1;
    }
  }
  return h;
}

// ---------- unit behaviour ----------

TEST(StreamChecker, EmptyStreamIsOk) {
  StreamingChecker c;
  EXPECT_TRUE(c.ok());
  EXPECT_EQ(c.first_violation_event(), -1);
  EXPECT_EQ(c.events_processed(), 0u);
  EXPECT_EQ(c.live_ops(), 0u);
}

TEST(StreamChecker, SequentialWriteReadIsOk) {
  StreamingChecker c;
  const int w = c.on_invoke(0, 0, OpKind::kWrite, 7, 1);
  c.on_response(w, 7, 2);
  const int r = c.on_invoke(1, 0, OpKind::kRead, 0, 3);
  c.on_response(r, 7, 4);
  EXPECT_TRUE(c.ok());
  EXPECT_EQ(c.events_processed(), 4u);
  EXPECT_EQ(c.live_ops(), 0u);       // both windows collapsed at quiescence
  EXPECT_EQ(c.retired_ops(), 2u);
}

TEST(StreamChecker, StaleReadRejectsAtTheExactEvent) {
  StreamingChecker c;
  const int w = c.on_invoke(0, 0, OpKind::kWrite, 7, 1);
  c.on_response(w, 7, 2);
  const int r = c.on_invoke(1, 0, OpKind::kRead, 0, 3);
  c.on_response(r, 9, 4);  // 9 was never written and is not the initial
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.error().empty());        // a verdict, not a limit
  EXPECT_EQ(c.first_violation_event(), 3);  // 0-based: the read's response
}

TEST(StreamChecker, LatchesAfterAViolation) {
  StreamingChecker c;
  const int r = c.on_invoke(0, 0, OpKind::kRead, 0, 1);
  c.on_response(r, 5, 2);  // violation: reads initial 0
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.first_violation_event(), 1);
  // Later (even clean) events keep counting but cannot move the verdict.
  const int w = c.on_invoke(1, 0, OpKind::kWrite, 5, 3);
  c.on_response(w, 5, 4);
  EXPECT_EQ(c.first_violation_event(), 1);
  EXPECT_EQ(c.events_processed(), 4u);
  EXPECT_FALSE(c.ok());
}

TEST(StreamChecker, InitialValuesAreRespected) {
  StreamingChecker good;
  good.set_initial(0, 9);
  const int r1 = good.on_invoke(0, 0, OpKind::kRead, 0, 1);
  good.on_response(r1, 9, 2);
  EXPECT_TRUE(good.ok());

  StreamingChecker bad;
  bad.set_initial(0, 9);
  const int r2 = bad.on_invoke(0, 0, OpKind::kRead, 0, 1);
  bad.on_response(r2, 0, 2);  // initial is 9 here, not the default 0
  EXPECT_FALSE(bad.ok());
}

TEST(StreamChecker, RegistersAreCheckedIndependently) {
  // Locality: a violation on register 1 must not depend on (or disturb)
  // the clean traffic interleaved on register 0.
  StreamingChecker c;
  const int w0 = c.on_invoke(0, 0, OpKind::kWrite, 3, 1);
  const int r1 = c.on_invoke(1, 1, OpKind::kRead, 0, 2);
  c.on_response(w0, 3, 3);
  c.on_response(r1, 8, 4);  // register 1 never held 8
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.first_violation_event(), 3);
}

TEST(StreamChecker, PendingWriteIsPossiblyEffective) {
  // A read may return the value of a write that never responds (the
  // crash/stall truncation shape from PR 3): the pending write must
  // reach the solver as possibly-effective on the streaming path too.
  StreamingChecker c;
  (void)c.on_invoke(0, 0, OpKind::kWrite, 5, 1);  // never responds
  const int r = c.on_invoke(1, 0, OpKind::kRead, 0, 2);
  c.on_response(r, 5, 3);
  EXPECT_TRUE(c.ok());
  EXPECT_EQ(c.live_ops(), 2u);  // the pending write pins its window open

  StreamingChecker d;
  const int r2 = d.on_invoke(1, 0, OpKind::kRead, 0, 2);
  d.on_response(r2, 5, 3);  // no such write, pending or otherwise
  EXPECT_FALSE(d.ok());
}

TEST(StreamChecker, FirstEventAtTimeZeroIsAccepted) {
  // External streams may start their clock at 0; only *subsequent*
  // events must strictly increase.
  StreamingChecker c;
  const int w = c.on_invoke(0, 0, OpKind::kWrite, 1, 0);
  c.on_response(w, 1, 1);
  EXPECT_TRUE(c.ok());
  EXPECT_TRUE(c.error().empty());
}

TEST(StreamChecker, CollapseRetiresWindowsAtQuiescence) {
  StreamingChecker c;
  for (int i = 0; i < 10; ++i) {
    const Time t = static_cast<Time>(2 * i);
    const int w = c.on_invoke(0, 0, OpKind::kWrite, i, t);
    c.on_response(w, static_cast<Value>(i), t + 1);
  }
  EXPECT_TRUE(c.ok());
  EXPECT_EQ(c.peak_live_ops(), 1u);
  EXPECT_EQ(c.live_ops(), 0u);
  EXPECT_EQ(c.retired_ops(), 10u);
  EXPECT_EQ(c.collapses(), 10u);
  // Write responses never invoke the solver.
  EXPECT_EQ(c.solver_calls(), 0u);
}

// ---------- limits are errors, not verdicts ----------

TEST(StreamChecker, OutOfOrderTimesLatchAnError) {
  StreamingChecker c;
  const int w = c.on_invoke(0, 0, OpKind::kWrite, 1, 5);
  c.on_response(w, 1, 5);  // not strictly after the invocation
  EXPECT_FALSE(c.ok());
  EXPECT_FALSE(c.error().empty());
  EXPECT_EQ(c.first_violation_event(), -1);  // unvalidated, not wrong
}

TEST(StreamChecker, UnknownOpIdLatchesAnError) {
  StreamingChecker c;
  c.on_response(42, 0, 1);
  EXPECT_FALSE(c.ok());
  EXPECT_FALSE(c.error().empty());
  EXPECT_EQ(c.first_violation_event(), -1);
}

TEST(StreamChecker, WindowOverflowLatchesAnError) {
  StreamCheckerOptions opt;
  opt.max_live_ops = 2;
  StreamingChecker c(opt);
  (void)c.on_invoke(0, 0, OpKind::kWrite, 1, 1);
  (void)c.on_invoke(1, 0, OpKind::kWrite, 2, 2);
  (void)c.on_invoke(2, 0, OpKind::kWrite, 3, 3);  // third concurrent op
  EXPECT_FALSE(c.ok());
  EXPECT_NE(c.error().find("window"), std::string::npos);
  EXPECT_EQ(c.first_violation_event(), -1);
}

// ---------- bounded memory ----------

TEST(StreamChecker, MillionEventStreamRunsInBoundedMemory) {
  // 10^6 events of genuinely overlapping traffic with periodic
  // quiescence.  The frontier must retire everything it proves
  // linearized: live state stays at the overlap degree (2 ops), never
  // the stream length.
  StreamingChecker c;
  constexpr std::uint64_t kIterations = 250'000;  // 4 events each
  Time t = 0;
  for (std::uint64_t i = 0; i < kIterations; ++i) {
    const Value v = static_cast<Value>(i % 3);
    const int w = c.on_invoke(0, 0, OpKind::kWrite, v, ++t);
    const int r = c.on_invoke(1, 0, OpKind::kRead, 0, ++t);  // overlaps w
    c.on_response(w, v, ++t);
    c.on_response(r, v, ++t);  // reads the overlapping write's value
    ASSERT_TRUE(c.ok()) << "iteration " << i;
  }
  EXPECT_EQ(c.events_processed(), 4 * kIterations);
  EXPECT_EQ(c.retired_ops(), 2 * kIterations);
  EXPECT_EQ(c.live_ops(), 0u);
  EXPECT_LE(c.peak_live_ops(), 2u);
  EXPECT_EQ(c.collapses(), kIterations);
}

// ---------- differential: streaming vs batch ----------

TEST(StreamChecker, AgreesWithBatchOnRandomHistories) {
  util::Rng rng(0xC0FFEE);
  int violations = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const History h = random_history(rng, 10);
    const StreamingChecker sc = check_stream(h);
    ASSERT_TRUE(sc.error().empty()) << sc.error() << "\n" << h.to_string();
    const bool batch = check_linearizable(h).ok;
    EXPECT_EQ(sc.ok(), batch) << h.to_string();
    if (!batch) ++violations;
  }
  // The generator must actually exercise the rejecting path.
  EXPECT_GT(violations, 100);
}

TEST(StreamChecker, PruningDoesNotChangeStreamingVerdicts) {
  util::Rng rng(0xFACADE);
  for (int trial = 0; trial < 500; ++trial) {
    const History h = random_history(rng, 10);
    StreamCheckerOptions off;
    off.prune = false;
    const StreamingChecker a = check_stream(h);
    const StreamingChecker b = check_stream(h, off);
    EXPECT_EQ(a.ok(), b.ok()) << h.to_string();
    EXPECT_EQ(a.first_violation_event(), b.first_violation_event())
        << h.to_string();
  }
}

TEST(StreamChecker, FirstRejectionMatchesBatchMinimalFailingPrefix) {
  // Prefix-monotonicity oracle: the streaming checker's first rejection
  // index must equal the index found by bisecting the batch checker over
  // event prefixes (here: a linear scan, which also proves minimality).
  util::Rng rng(0xBADC0DE);
  int checked = 0;
  for (int trial = 0; trial < 800; ++trial) {
    const History h = random_history(rng, 10);
    const StreamingChecker sc = check_stream(h);
    ASSERT_TRUE(sc.error().empty());
    if (sc.ok()) continue;
    const std::vector<history::Event> events = h.events();
    std::optional<std::int64_t> batch_first;
    for (std::size_t j = 0; j < events.size() && !batch_first; ++j) {
      if (!check_linearizable(h.prefix_at(events[j].time)).ok) {
        batch_first = static_cast<std::int64_t>(j);
      }
    }
    ASSERT_TRUE(batch_first.has_value()) << h.to_string();
    EXPECT_EQ(sc.first_violation_event(), *batch_first) << h.to_string();
    ++checked;
  }
  EXPECT_GT(checked, 50);
}

// ---------- differential: every sweep family ----------

TEST(StreamChecker, OnlineSweepAgreesAcrossEveryFamily) {
  // The --online cross-check runs inside classify_run: any batch/online
  // split reports kError with a loud detail.  Sweep the full family
  // cross-product — modeled (three semantics), alg2, alg4, ABD — under
  // fault-free, minority-crash, and stall regimes, and require every
  // record to be byte-identical to its offline twin (which also proves
  // no kError was introduced).
  sweep::SweepOptions o;
  o.faults = {sweep::FaultKind::kNone, sweep::FaultKind::kMinorityCrash,
              sweep::FaultKind::kStall};
  o.crash_seeds = {0, 1};
  o.seed_begin = 0;
  o.seed_end = 3;
  for (sweep::Scenario s : sweep::enumerate_scenarios(o)) {
    const sweep::ScenarioResult off = sweep::run_scenario(s);
    s.online_check = true;
    const sweep::ScenarioResult on = sweep::run_scenario(s);
    ASSERT_EQ(off.verdict, on.verdict)
        << s.key() << ": offline [" << to_string(off.verdict) << "] "
        << off.detail << " vs online [" << to_string(on.verdict) << "] "
        << on.detail;
    EXPECT_EQ(off.detail, on.detail) << s.key();
    EXPECT_EQ(off.history_hash, on.history_hash) << s.key();
    EXPECT_EQ(off.steps, on.steps) << s.key();
  }
}

TEST(StreamChecker, OnlineAgreesOnPlantedAblationViolations) {
  // Genuine violations (ABD without read write-back, the PR 3 recipe):
  // the streaming checker must agree the history is bad, so the online
  // run still classifies kViolation — identically — rather than kError.
  sweep::Scenario base;
  base.algorithm = sweep::Algorithm::kAbd;
  base.adversary = sweep::AdversaryKind::kRandom;
  base.processes = 5;
  base.abd_read_write_back = false;
  int found = 0;
  for (std::uint64_t seed = 0; seed < 300 && found < 3; ++seed) {
    base.seed = seed;
    base.online_check = false;
    const sweep::ScenarioResult off = sweep::run_scenario(base);
    if (off.verdict != sweep::Verdict::kViolation) continue;
    ++found;
    base.online_check = true;
    const sweep::ScenarioResult on = sweep::run_scenario(base);
    EXPECT_EQ(on.verdict, sweep::Verdict::kViolation) << on.detail;
    EXPECT_EQ(on.detail, off.detail);
    EXPECT_EQ(on.history_hash, off.history_hash);
  }
  ASSERT_GT(found, 0) << "no ablation violation found — widen the seed scan";
}

TEST(StreamChecker, OnlineAgreesOnBudgetTruncatedViolations) {
  // PR 3's verdict-masking regression, extended to the streaming entry
  // point: a budget-truncated prefix containing the planted violation
  // classifies kViolation both offline and online, byte-identically.
  sweep::Scenario base;
  base.algorithm = sweep::Algorithm::kAbd;
  base.adversary = sweep::AdversaryKind::kRandom;
  base.processes = 5;
  base.abd_read_write_back = false;
  std::optional<std::uint64_t> violating_seed;
  for (std::uint64_t seed = 0; seed < 300 && !violating_seed; ++seed) {
    base.seed = seed;
    if (sweep::run_scenario(base).verdict == sweep::Verdict::kViolation) {
      violating_seed = seed;
    }
  }
  ASSERT_TRUE(violating_seed.has_value());
  base.seed = *violating_seed;
  bool truncated_case_hit = false;
  for (std::uint64_t budget = 1; budget <= 600; ++budget) {
    base.max_actions = budget;
    base.online_check = false;
    const sweep::ScenarioResult off = sweep::run_scenario(base);
    base.online_check = true;
    const sweep::ScenarioResult on = sweep::run_scenario(base);
    ASSERT_EQ(off.verdict, on.verdict)
        << "budget " << budget << ": " << off.detail << " vs " << on.detail;
    ASSERT_EQ(off.detail, on.detail) << "budget " << budget;
    if (off.verdict == sweep::Verdict::kViolation &&
        off.detail.find("action budget") != std::string::npos) {
      truncated_case_hit = true;
    }
  }
  EXPECT_TRUE(truncated_case_hit);
}

TEST(StreamChecker, OnlineExploreFindsTheSamePlantedViolation) {
  // Explore witnesses: the schedule search with the --online cross-check
  // active must find the planted violation and produce the identical
  // deterministic summary (digest covers every instance outcome).
  explore::ExploreOptions o;
  o.objective = explore::Objective::kViolation;
  o.algorithms = {sweep::Algorithm::kAbd};
  o.abd_read_write_back = false;
  o.process_counts = {5};
  o.seed_begin = 0;
  o.seed_end = 2;
  o.search_budget = 16;
  o.shrink_budget = 512;
  const explore::ExploreSummary off = run_explore(o);
  o.online = true;
  const explore::ExploreSummary on = run_explore(o);
  EXPECT_EQ(off.stable_text(), on.stable_text());
  EXPECT_GT(on.violations_found, 0u);
  EXPECT_EQ(on.errors, 0u);
}

TEST(StreamChecker, OnlineSweepAgreesOnDegradedFaultFabricHistories) {
  // The unreliable-network fabric (PR 7): histories recorded under
  // message loss, duplication, healed partitions, majority loss, and
  // crash-recovery — including abandoned ops pending forever — must
  // stream to the same verdict as the batch checker, byte-identically.
  // Duplicated deliveries never reach the history (receiver-side dedup),
  // but retransmission reshapes op windows, and blocked runs hand the
  // checkers truncated, pending-heavy shapes.
  sweep::SweepOptions o;
  o.algorithms = {sweep::Algorithm::kAbd};
  o.faults = {sweep::FaultKind::kLossy, sweep::FaultKind::kDuplicate,
              sweep::FaultKind::kPartition, sweep::FaultKind::kMajorityCrash,
              sweep::FaultKind::kCrashRecovery};
  o.drop_permille = 300;
  o.crash_seeds = {0, 1};
  o.seed_begin = 0;
  o.seed_end = 4;
  int blocked = 0;
  for (sweep::Scenario s : sweep::enumerate_scenarios(o)) {
    const sweep::ScenarioResult off = sweep::run_scenario(s);
    s.online_check = true;
    const sweep::ScenarioResult on = sweep::run_scenario(s);
    ASSERT_EQ(off.verdict, on.verdict)
        << s.key() << ": offline [" << to_string(off.verdict) << "] "
        << off.detail << " vs online [" << to_string(on.verdict) << "] "
        << on.detail;
    EXPECT_EQ(off.detail, on.detail) << s.key();
    EXPECT_EQ(off.history_hash, on.history_hash) << s.key();
    EXPECT_EQ(off.steps, on.steps) << s.key();
    ASSERT_NE(off.verdict, sweep::Verdict::kError) << s.key() << off.detail;
    if (off.verdict == sweep::Verdict::kBlocked) ++blocked;
  }
  // The majority-loss slice alone guarantees degraded histories flowed
  // through both checkers.
  EXPECT_GT(blocked, 0);
}

// ---------- check_stream on hand-built blocked histories ----------

TEST(StreamChecker, BlockedCrashHistoriesStreamClean) {
  // The hand-built blocked-by-crash shape (PR 3): a stranded pending read
  // reaches the streaming checker as an op that simply never responds.
  History h;
  add(h, 0, OpKind::kWrite, 4, 1, 2);
  OpRecord stranded;
  stranded.process = 1;
  stranded.reg = 0;
  stranded.kind = OpKind::kRead;
  stranded.value = 0;
  stranded.invoke = 3;
  stranded.response = kNoTime;
  h.add(stranded);
  const StreamingChecker sc = check_stream(h);
  EXPECT_TRUE(sc.ok());
  EXPECT_TRUE(sc.error().empty());
  EXPECT_EQ(sc.live_ops(), 1u);  // only the stranded read is still live
  EXPECT_EQ(check_linearizable(h).ok, sc.ok());
}

}  // namespace
}  // namespace rlt::checker
