// The observability fabric's own contract tests:
//
//  * the registry folds thread-local shards commutatively (sum / max),
//    so stable metrics are thread- and batch-invariant;
//  * everything is inert while the gate is off;
//  * trace spans are byte-identical across --threads/--batch;
//  * attaching the fabric never changes a digest, a store byte, or the
//    pinned PR 1 baseline digest (observability, not digest material);
//  * the progress fd speaks the documented one-JSON-line protocol;
//  * ABD per-op accounting (msgs / bytes / round trips) is exact.
#include <unistd.h>

#include <array>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "sweep/store.hpp"
#include "sweep/sweep.hpp"

namespace rlt::obs {
namespace {

// Every test leaves the process-global registry the way it found it:
// disabled and zeroed.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    set_enabled(false);
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

TEST_F(ObsTest, CompiledInByDefault) { EXPECT_TRUE(kCompiledIn); }

TEST_F(ObsTest, DisabledGateMakesEverySiteInert) {
  ASSERT_FALSE(enabled());
  count(Counter::kCheckerSolverCalls, 7);
  gauge_max(Gauge::kStreamPeakLiveOps, 42);
  hist(Hist::kScenarioOps, 9);
  const Snapshot s = snapshot_all();
  for (std::uint64_t c : s.data.counters) EXPECT_EQ(c, 0u);
  for (std::uint64_t g : s.data.gauges) EXPECT_EQ(g, 0u);
  for (const auto& h : s.data.hists) {
    for (std::uint64_t b : h) EXPECT_EQ(b, 0u);
  }
}

TEST_F(ObsTest, SnapshotFoldsShardsAcrossThreads) {
  set_enabled(true);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        count(Counter::kCheckerDfsNodes);
      }
      // Gauges fold with max; only the largest thread value survives.
      gauge_max(Gauge::kStreamPeakLiveOps,
                static_cast<std::uint64_t>(t + 1));
      hist(Hist::kScenarioOps, 8);  // bucket bit_width(8) = 4
    });
  }
  for (std::thread& w : workers) w.join();
  const Snapshot s = snapshot_all();
  EXPECT_EQ(
      s.data.counters[static_cast<std::size_t>(Counter::kCheckerDfsNodes)],
      kThreads * kPerThread);
  EXPECT_EQ(
      s.data.gauges[static_cast<std::size_t>(Gauge::kStreamPeakLiveOps)],
      static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(s.data.hists[static_cast<std::size_t>(Hist::kScenarioOps)][4],
            static_cast<std::uint64_t>(kThreads));
}

TEST_F(ObsTest, CounterDeltaSubtractsPerScenarioWork) {
  set_enabled(true);
  count(Counter::kWslSolverCalls, 5);
  const CounterDelta before = thread_counters();
  count(Counter::kWslSolverCalls, 3);
  CounterDelta after = thread_counters();
  after -= before;
  EXPECT_EQ(after.v[static_cast<std::size_t>(Counter::kWslSolverCalls)], 3u);
  EXPECT_EQ(after.v[static_cast<std::size_t>(Counter::kCheckerDfsNodes)], 0u);
}

TEST_F(ObsTest, AppendStableDeltasSkipsZerosAndRuntimeCounters) {
  CounterDelta d;
  d.v[static_cast<std::size_t>(Counter::kCheckerSolverCalls)] = 2;
  d.v[static_cast<std::size_t>(Counter::kPoolSteals)] = 99;  // runtime
  sweep::Record r;
  append_stable_deltas(d, r);
  const std::string json = r.json();
  EXPECT_NE(json.find("\"checker.solver_calls\":2"), std::string::npos);
  EXPECT_EQ(json.find("pool.steals"), std::string::npos);
  EXPECT_EQ(json.find("checker.dfs_nodes"), std::string::npos);
}

// -------------------------------------------------- sweep integration ---

sweep::SweepOptions small_sweep(int threads, int batch) {
  sweep::SweepOptions o;
  o.process_counts = {3};
  o.seed_begin = 0;
  o.seed_end = 6;
  o.threads = threads;
  o.batch_size = batch;
  return o;
}

/// The stable slice of a snapshot, as comparable vectors.
struct StableView {
  std::vector<std::uint64_t> counters;
  std::vector<std::uint64_t> gauges;
  std::vector<std::array<std::uint64_t, kHistBuckets>> hists;

  bool operator==(const StableView&) const = default;
};

StableView stable_view(const Snapshot& s) {
  StableView v;
  for (int i = 0; i < kNumCounters; ++i) {
    if (counter_stable(static_cast<Counter>(i))) {
      v.counters.push_back(s.data.counters[static_cast<std::size_t>(i)]);
    }
  }
  for (int i = 0; i < kNumGauges; ++i) {
    if (gauge_stable(static_cast<Gauge>(i))) {
      v.gauges.push_back(s.data.gauges[static_cast<std::size_t>(i)]);
    }
  }
  for (int i = 0; i < kNumHists; ++i) {
    if (hist_stable(static_cast<Hist>(i))) {
      v.hists.push_back(s.data.hists[static_cast<std::size_t>(i)]);
    }
  }
  return v;
}

TEST_F(ObsTest, StableMetricsAreThreadAndBatchInvariant) {
  set_enabled(true);
  (void)sweep::run_sweep(small_sweep(1, 16));
  const StableView serial = stable_view(snapshot_all());
  reset();
  (void)sweep::run_sweep(small_sweep(4, 3));
  const StableView pooled = stable_view(snapshot_all());
  EXPECT_FALSE(serial.counters.empty());
  EXPECT_GT(serial.counters[0], 0u);  // checker.solver_calls did work
  EXPECT_TRUE(serial == pooled);
}

TEST_F(ObsTest, TraceSpansAreByteIdenticalAcrossThreadsAndBatch) {
  sweep::StringSink serial_trace;
  Hooks h1;
  h1.trace = &serial_trace;
  (void)sweep::run_sweep(small_sweep(1, 16), 0, nullptr, &h1);
  set_enabled(false);
  reset();

  sweep::StringSink pooled_trace;
  Hooks h2;
  h2.trace = &pooled_trace;
  (void)sweep::run_sweep(small_sweep(4, 3), 0, nullptr, &h2);

  EXPECT_FALSE(serial_trace.text().empty());
  EXPECT_EQ(serial_trace.text(), pooled_trace.text());
  // One span per scenario, in enumeration order.
  EXPECT_NE(serial_trace.text().find("\"gi\":0,"), std::string::npos);
  EXPECT_NE(serial_trace.text().find("\"obs\":\"span\""), std::string::npos);
}

TEST_F(ObsTest, HooksNeverChangeDigestOrStoreBytes) {
  const sweep::SweepSummary plain = sweep::run_sweep(small_sweep(2, 4));
  sweep::StringSink plain_store;
  (void)sweep::run_sweep(small_sweep(2, 4), 0, &plain_store);

  sweep::StringSink trace;
  sweep::StringSink traced_store;
  Hooks h;
  h.trace = &trace;
  const sweep::SweepSummary traced =
      sweep::run_sweep(small_sweep(2, 4), 0, &traced_store, &h);

  EXPECT_EQ(plain.digest, traced.digest);
  EXPECT_EQ(plain.stable_text(), traced.stable_text());
  EXPECT_EQ(plain_store.text(), traced_store.text());
}

TEST_F(ObsTest, PinnedBaselineDigestSurvivesInstrumentation) {
  // The PR 1 pinned digest (sweep_test.cpp BaselineDigestIsPinned) with
  // the full fabric attached: tracing + metrics must not perturb one
  // bit of scenario behaviour.
  sweep::SweepOptions o;
  o.seed_begin = 0;
  o.seed_end = 50;
  o.process_counts = {3};
  o.threads = 4;
  sweep::StringSink trace;
  Hooks h;
  h.trace = &trace;
  const sweep::SweepSummary sum = sweep::run_sweep(o, 0, nullptr, &h);
  EXPECT_EQ(sum.scenarios, 600u);
  EXPECT_EQ(sum.ok, 600u);
  EXPECT_EQ(sum.digest, 0x74043e05615bfe8fULL);
  EXPECT_TRUE(enabled());  // the trace hook switched the registry on
}

TEST_F(ObsTest, StoreRecordsCarryAbdMessageAccounting) {
  sweep::SweepOptions o;
  o.algorithms = {sweep::Algorithm::kAbd};
  o.process_counts = {3};
  o.seed_begin = 0;
  o.seed_end = 3;
  sweep::StringSink a;
  (void)sweep::run_sweep(o, 0, &a);
  // Fault-free ABD: every op broadcasts, so counts are positive; a
  // write is 1 round trip, a read 2 (query + write-back).
  EXPECT_NE(a.text().find("\"msgs\":"), std::string::npos);
  EXPECT_NE(a.text().find("\"bytes\":"), std::string::npos);
  EXPECT_NE(a.text().find("\"rts\":"), std::string::npos);
  EXPECT_EQ(a.text().find("\"msgs\":0,"), std::string::npos);
  EXPECT_EQ(a.text().find("\"rts\":0,"), std::string::npos);
  // And deterministically so.
  sweep::StringSink b;
  (void)sweep::run_sweep(o, 0, &b);
  EXPECT_EQ(a.text(), b.text());
}

TEST_F(ObsTest, DumpEmitsEveryScalarInEnumOrder) {
  set_enabled(true);
  count(Counter::kNetMsgsSent, 12);
  sweep::StringSink sink;
  dump(snapshot_all(), sink, "safety", "test-config");
  const std::string& t = sink.text();
  EXPECT_NE(t.find("\"obs\":\"meta\""), std::string::npos);
  EXPECT_NE(t.find("\"config\":\"test-config\""), std::string::npos);
  EXPECT_NE(t.find("\"name\":\"net.msgs_sent\",\"value\":12"),
            std::string::npos);
  // Exhaustive: zero-valued counters still appear…
  EXPECT_NE(t.find("\"name\":\"term.coin_flips\",\"value\":0"),
            std::string::npos);
  // …and the runtime section is flagged.
  EXPECT_NE(t.find("\"name\":\"pool.steals\",\"value\":0,\"stable\":false"),
            std::string::npos);
}

// ------------------------------------------------------------ progress ---

TEST_F(ObsTest, ProgressFdSpeaksTheDocumentedProtocol) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  {
    ProgressOptions po;
    po.total = 5;
    po.mode = "safety";
    po.fd = fds[1];
    ProgressMeter meter(po);
    for (int i = 0; i < 4; ++i) meter.tick(0);
    meter.tick(2);  // one blocked
    meter.finish();
  }
  close(fds[1]);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof buf)) > 0) out.append(buf, n);
  close(fds[0]);
  // The final line is the "done" state with full class counts.
  const std::size_t last = out.rfind("{\"obs\":\"progress\"");
  ASSERT_NE(last, std::string::npos);
  const std::string line = out.substr(last);
  EXPECT_NE(line.find("\"state\":\"done\""), std::string::npos);
  EXPECT_NE(line.find("\"done\":5"), std::string::npos);
  EXPECT_NE(line.find("\"total\":5"), std::string::npos);
  EXPECT_NE(line.find("\"ok\":4"), std::string::npos);
  EXPECT_NE(line.find("\"blocked\":1"), std::string::npos);
}

TEST_F(ObsTest, ProgressMeterFinishIsIdempotent) {
  ProgressOptions po;
  po.total = 1;
  po.fd = -1;
  po.heartbeat_ms = 0;
  ProgressMeter meter(po);
  meter.tick(0);
  meter.finish();
  meter.finish();  // second finish must be a no-op (dtor adds a third)
}

}  // namespace
}  // namespace rlt::obs
