// Tests for util: deterministic RNG and invariant checking.
#include <gtest/gtest.h>

#include <set>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rlt::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64()) << "diverged at draw " << i;
  }
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next_u64());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.uniform_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, FlipIsRoughlyFair) {
  Rng rng(77);
  int ones = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) ones += rng.flip();
  EXPECT_GT(ones, trials / 2 - 300);
  EXPECT_LT(ones, trials / 2 + 300);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitMixKnownGoodSequenceIsStable) {
  // Pin the stream so refactors cannot silently change every experiment.
  Rng rng(0);
  const std::uint64_t first = rng.next_u64();
  Rng again(0);
  EXPECT_EQ(first, again.next_u64());
  EXPECT_NE(first, 0u);
}

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(RLT_CHECK(false), InvariantViolation);
  try {
    RLT_CHECK_MSG(1 == 2, "custom detail " << 42);
    FAIL() << "should have thrown";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"),
              std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(RLT_CHECK(true));
  EXPECT_NO_THROW(RLT_CHECK_MSG(2 + 2 == 4, "unused"));
}

}  // namespace
}  // namespace rlt::util
