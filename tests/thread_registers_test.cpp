// Real-thread stress tests: seqlock SWMR base registers and the thread
// builds of Algorithms 2 and 4.  Recorded histories are validated by the
// off-line checkers (linearizability for both; Definition 4 for
// Algorithm 2's histories).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "checker/lin_checker.hpp"
#include "checker/wsl_checker.hpp"
#include "registers/seqlock.hpp"
#include "registers/thread_alg2.hpp"
#include "registers/thread_alg4.hpp"
#include "util/assert.hpp"

namespace rlt::registers {
namespace {

TEST(Seqlock, SingleThreadedRoundTrip) {
  struct Payload {
    std::int64_t a;
    std::int64_t b;
    std::int64_t c;
  };
  SeqlockSWMR<Payload> reg(Payload{1, 2, 3});
  const Payload p0 = reg.read();
  EXPECT_EQ(p0.a, 1);
  EXPECT_EQ(p0.c, 3);
  reg.write(Payload{4, 5, 6});
  const Payload p1 = reg.read();
  EXPECT_EQ(p1.a, 4);
  EXPECT_EQ(p1.b, 5);
}

TEST(Seqlock, ReadersNeverSeeTornWrites) {
  // The writer stores (i, 2i, 3i); any torn read would break the
  // arithmetic relation between the fields.
  struct Triple {
    std::int64_t x;
    std::int64_t y;
    std::int64_t z;
  };
  SeqlockSWMR<Triple> reg(Triple{0, 0, 0});
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  readers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&reg, &stop, &violations] {
      while (!stop.load(std::memory_order_relaxed)) {
        const Triple v = reg.read();
        if (v.y != 2 * v.x || v.z != 3 * v.x) {
          violations.fetch_add(1);
        }
      }
    });
  }
  for (std::int64_t i = 1; i <= 20000; ++i) {
    reg.write(Triple{i, 2 * i, 3 * i});
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(Seqlock, ReadsAreMonotoneForSingleWriter) {
  SeqlockSWMR<std::int64_t> reg(0);
  std::atomic<bool> stop{false};
  std::atomic<int> regressions{0};
  std::thread reader([&reg, &stop, &regressions] {
    std::int64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::int64_t v = reg.read();
      if (v < last) regressions.fetch_add(1);
      last = v;
    }
  });
  for (std::int64_t i = 1; i <= 50000; ++i) reg.write(i);
  stop.store(true);
  reader.join();
  EXPECT_EQ(regressions.load(), 0);
}

/// Runs a small concurrent workload against a thread register build and
/// returns the recorded history (kept small enough for the checkers).
template <class Register>
history::History stress(Register& reg, int writers, int writes_each,
                        int readers, int reads_each) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(writers + readers));
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&reg, w, writes_each] {
      for (int i = 0; i < writes_each; ++i) {
        reg.write(w, 100 * (w + 1) + i);
      }
    });
  }
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&reg, r, reads_each, writers] {
      for (int i = 0; i < reads_each; ++i) {
        (void)reg.read(writers + r);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return reg.history_snapshot();
}

class ThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadSweep, Alg2HistoriesAreLinearizableAndWsl) {
  ThreadAlg2Register reg(3, 0);
  const history::History h = stress(reg, 3, 3, 2, 4);
  h.validate();
  const auto lin = checker::check_linearizable(h);
  ASSERT_TRUE(lin.ok) << lin.error << '\n' << h.to_string();
  const auto wsl = checker::check_write_strong_linearizable(h);
  EXPECT_TRUE(wsl.ok) << wsl.explanation << '\n' << h.to_string();
}

TEST_P(ThreadSweep, Alg4HistoriesAreLinearizable) {
  ThreadAlg4Register reg(3, 0);
  const history::History h = stress(reg, 3, 3, 2, 4);
  h.validate();
  const auto lin = checker::check_linearizable(h);
  ASSERT_TRUE(lin.ok) << lin.error << '\n' << h.to_string();
}

INSTANTIATE_TEST_SUITE_P(Iterations, ThreadSweep, ::testing::Range(0, 10));

TEST(ThreadAlg2, SequentialSemantics) {
  ThreadAlg2Register reg(2, 5, /*record=*/false);
  EXPECT_EQ(reg.read(0), 5);
  reg.write(0, 10);
  EXPECT_EQ(reg.read(1), 10);
  reg.write(1, 20);
  EXPECT_EQ(reg.read(0), 20);
}

TEST(ThreadAlg4, SequentialSemantics) {
  ThreadAlg4Register reg(2, 5, /*record=*/false);
  EXPECT_EQ(reg.read(0), 5);
  reg.write(0, 10);
  EXPECT_EQ(reg.read(1), 10);
  reg.write(1, 20);
  EXPECT_EQ(reg.read(0), 20);
}

TEST(ThreadAlg2, RejectsTooManyWriters) {
  EXPECT_THROW(ThreadAlg2Register(kMaxThreadWriters + 1, 0),
               util::InvariantViolation);
}

TEST(LockedRegister, BasicSemantics) {
  LockedMwmrRegister reg(3);
  EXPECT_EQ(reg.read(), 3);
  reg.write(9);
  EXPECT_EQ(reg.read(), 9);
}

}  // namespace
}  // namespace rlt::registers
