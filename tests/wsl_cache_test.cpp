// The WSL checker's memo cache must be a pure accelerator: verdicts,
// write orders, and failure classification are identical with the cache
// force-disabled vs enabled, on the fig3-style (Algorithm 2 runs) and
// fig4-style (Algorithm 4 branching trees) suites.  The cache's job is
// only to make solver_calls drop — which is asserted too.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "checker/wsl_checker.hpp"
#include "history/history.hpp"
#include "registers/alg2_register.hpp"
#include "registers/alg4_register.hpp"
#include "sim/adversary.hpp"
#include "sim/scheduler.hpp"

namespace rlt {
namespace {

using history::History;

// ---- run generators ------------------------------------------------------

sim::Task alg2_writer(sim::Proc& p, registers::SimAlg2Register& r, int slot,
                      int writes) {
  for (int i = 0; i < writes; ++i) {
    co_await r.write(p, slot, 100 * (slot + 1) + i);
  }
  (void)co_await r.read(p);
}

/// Fig3-style workload: concurrent multi-writer runs of Algorithm 2
/// (write strongly linearizable by Theorem 10) under a random schedule.
History alg2_history(std::uint64_t seed, int writers, int writes) {
  sim::Scheduler sched(seed);
  registers::SimAlg2Register reg(sched, writers, 100, 0);
  for (int w = 0; w < writers; ++w) {
    sched.add_process("w", [&reg, w, writes](sim::Proc& p) {
      return alg2_writer(p, reg, w, writes);
    });
  }
  sim::RandomAdversary adv(seed * 31 + 5);
  sched.run(adv, 1000000);
  return reg.hl_history();
}

sim::Task alg4_writer(sim::Proc& p, registers::SimAlg4Register& r, int slot,
                      history::Value v) {
  co_await r.write(p, slot, v);
}

sim::Task alg4_write_then_read(sim::Proc& p, registers::SimAlg4Register& r,
                               int slot, history::Value v, bool do_write) {
  if (do_write) co_await r.write(p, slot, v);
  (void)co_await r.read(p);
}

/// The two branching histories of Figure 4 (Theorem 13) — the suite where
/// the checker must answer "no" and the memo must not change that.
History fig4_history(bool h2) {
  sim::Scheduler sched(1);
  auto reg = std::make_unique<registers::SimAlg4Register>(sched, 3, 100, 0);
  sched.add_process("p0", [&r = *reg](sim::Proc& p) {
    return alg4_writer(p, r, 0, 10);
  });
  sched.add_process("p1", [&r = *reg](sim::Proc& p) {
    return alg4_writer(p, r, 1, 20);
  });
  sched.add_process("p2", [&r = *reg, h2](sim::Proc& p) {
    return alg4_write_then_read(p, r, 2, 30, h2);
  });
  std::vector<sim::ProcessId> steps = {0, 0, 1, 1, 1, 1, 1};
  if (!h2) {
    steps.insert(steps.end(), {0, 0, 0, 2, 2, 2, 2});
  } else {
    steps.insert(steps.end(), {2, 2, 2, 2, 0, 0, 0, 2, 2, 2, 2});
  }
  sim::FixedStepAdversary adv(steps);
  sched.run(adv, 1000);
  return reg->hl_history();
}

// ---- equivalence harness -------------------------------------------------

/// Runs the checker with the memo on and off and asserts everything the
/// caller can observe (except counters) is identical.  Returns the pair
/// of results for counter assertions.
std::pair<checker::WslCheckResult, checker::WslCheckResult> check_both(
    const std::vector<History>& runs) {
  checker::WslCheckResult on =
      checker::check_write_strong_linearizable(runs, {.memoize = true});
  checker::WslCheckResult off =
      checker::check_write_strong_linearizable(runs, {.memoize = false});
  EXPECT_EQ(on.ok, off.ok);
  EXPECT_EQ(on.write_orders, off.write_orders);
  EXPECT_EQ(off.cache_hits, 0u) << "disabled cache must never hit";
  EXPECT_EQ(on.solver_calls, on.cache_misses)
      << "with the memo on, every miss is exactly one solver call";
  EXPECT_LE(on.solver_calls, off.solver_calls)
      << "the memo must never ADD solver work";
  return {std::move(on), std::move(off)};
}

TEST(WslCache, Fig3SuiteVerdictsAndOrdersMatch) {
  std::size_t hits = 0;
  std::size_t calls_on = 0, calls_off = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const History h = alg2_history(seed, /*writers=*/3, /*writes=*/2);
    const auto [on, off] = check_both({h});
    EXPECT_TRUE(on.ok) << "Algorithm 2 run must be WSL (Theorem 10), seed "
                       << seed;
    hits += on.cache_hits;
    calls_on += on.solver_calls;
    calls_off += off.solver_calls;
  }
  // The acceptance bar: the memo measurably reduces solver calls across
  // the fig3-style suite, and actually gets exercised.
  EXPECT_GT(hits, 0u);
  EXPECT_LT(calls_on, calls_off);
}

TEST(WslCache, Fig4BranchingSuiteMatchesIncludingFailure) {
  const History h1 = fig4_history(false);
  const History h2 = fig4_history(true);
  // Single runs: WSL-ok.
  (void)check_both({h1});
  (void)check_both({h2});
  // The branching set: not WSL (Theorem 13); the memo must preserve the
  // failure verdict and classification.
  const auto [on, off] = check_both({h1, h2});
  EXPECT_FALSE(on.ok);
  EXPECT_NE(on.explanation.find("no write strong-linearization"),
            std::string::npos);
  EXPECT_NE(off.explanation.find("no write strong-linearization"),
            std::string::npos);
}

TEST(WslCache, ExtendedRunsShareThePrefixTreeSafely) {
  // A run plus a strict prefix-extension of it: the prefix-tree memo key
  // must identify their shared nodes without conflating the divergence.
  const History h = alg2_history(7, /*writers=*/3, /*writes=*/2);
  std::vector<History> runs;
  runs.push_back(h.prefix_at(h.events().at(h.events().size() / 2).time));
  runs.push_back(h);
  const auto [on, off] = check_both(runs);
  EXPECT_TRUE(on.ok);
}

TEST(WslCache, CountersAreConsistent) {
  const History h = alg2_history(3, /*writers=*/4, /*writes=*/2);
  const auto on =
      checker::check_write_strong_linearizable(h, {.memoize = true});
  EXPECT_EQ(on.solver_calls, on.cache_misses);
  const auto off =
      checker::check_write_strong_linearizable(h, {.memoize = false});
  EXPECT_EQ(off.cache_hits, 0u);
  EXPECT_EQ(off.solver_calls, off.cache_misses);
}

}  // namespace
}  // namespace rlt
