// Tests for the termination lab (src/term/): per-scenario determinism,
// the golden termination distributions the paper promises (Theorem 6
// scripted schedules never terminate; the composed A' always decides),
// the termination sweep's digest guarantees, and the persisted result
// store (canonical JSONL records, byte-stable across thread counts).
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sweep/store.hpp"
#include "sweep/sweep.hpp"
#include "term/term_scenario.hpp"
#include "term/term_sweep.hpp"

namespace rlt::term {
namespace {

TermScenario make(Family f, TermAdversary a, std::uint64_t seed,
                  int processes = 4, int rounds = 64) {
  TermScenario s;
  s.family = f;
  s.adversary = a;
  s.processes = processes;
  s.seed = seed;
  s.max_rounds = rounds;
  return s;
}

// ---------- scenario basics ----------

TEST(TermScenario, KeySpellingIsStable) {
  EXPECT_EQ(make(Family::kGame, TermAdversary::kScripted, 42, 5, 40).key(),
            "term/game/scripted/p5/r40/seed42");
  EXPECT_EQ(make(Family::kConsensus, TermAdversary::kStalling, 7).key(),
            "term/consensus/stall/p4/r64/seed7");
  EXPECT_EQ(make(Family::kSharedCoin, TermAdversary::kRandom, 0).key(),
            "term/coin/rand/p4/r64/seed0");
  EXPECT_EQ(make(Family::kComposed, TermAdversary::kScripted, 1).key(),
            "term/composed/scripted/p4/r64/seed1");
}

TEST(TermScenario, RerunIsBitIdentical) {
  for (const Family f : {Family::kConsensus, Family::kComposed,
                         Family::kSharedCoin, Family::kGame}) {
    for (const TermAdversary adv :
         {TermAdversary::kScripted, TermAdversary::kRandom,
          TermAdversary::kStalling}) {
      if (!combination_valid(f, adv)) continue;
      const TermScenario s = make(f, adv, 12345);
      const TermRecord a = run_term_scenario(s);
      const TermRecord b = run_term_scenario(s);
      EXPECT_FALSE(a.error) << s.key() << ": " << a.detail;
      EXPECT_EQ(a.terminated, b.terminated) << s.key();
      EXPECT_EQ(a.capped, b.capped) << s.key();
      EXPECT_EQ(a.rounds, b.rounds) << s.key();
      EXPECT_EQ(a.stalled, b.stalled) << s.key();
      EXPECT_EQ(a.coin_flips, b.coin_flips) << s.key();
      EXPECT_EQ(a.steps, b.steps) << s.key();
      EXPECT_EQ(a.outcome_hash, b.outcome_hash) << s.key();
      EXPECT_EQ(a.detail, b.detail) << s.key();
    }
  }
}

TEST(TermScenario, InvalidCombinationIsAnErrorNotACrash) {
  for (const Family f : {Family::kConsensus, Family::kSharedCoin}) {
    const TermRecord r =
        run_term_scenario(make(f, TermAdversary::kScripted, 0));
    EXPECT_TRUE(r.error) << to_string(f);
    EXPECT_FALSE(r.terminated) << to_string(f);
    EXPECT_NE(r.detail.find("scripted"), std::string::npos) << r.detail;
  }
}

TEST(TermScenario, GameFamiliesNeedThreeProcesses) {
  for (const Family f : {Family::kGame, Family::kComposed}) {
    const TermRecord r =
        run_term_scenario(make(f, TermAdversary::kRandom, 0, /*processes=*/2));
    EXPECT_TRUE(r.error) << to_string(f);
  }
  // The consensus/coin families are fine with 2.
  const TermRecord ok = run_term_scenario(
      make(Family::kConsensus, TermAdversary::kRandom, 0, /*processes=*/2));
  EXPECT_FALSE(ok.error) << ok.detail;
  EXPECT_TRUE(ok.terminated) << ok.detail;
}

// ---------- golden distributions ----------

TEST(TermGolden, Theorem6ScriptedGameNeverTerminatesWithinBudget) {
  // The paper's headline: against merely linearizable registers the
  // scripted strong adversary keeps every process in the game forever.
  // Every seed, every swept size: capped at the round budget, never
  // terminated, zero errors.
  for (const int n : {4, 5}) {
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
      const TermRecord r = run_term_scenario(
          make(Family::kGame, TermAdversary::kScripted, seed, n,
               /*rounds=*/20));
      ASSERT_FALSE(r.error) << r.detail;
      EXPECT_FALSE(r.terminated) << "n=" << n << " seed=" << seed;
      EXPECT_TRUE(r.capped) << "n=" << n << " seed=" << seed;
      EXPECT_EQ(r.rounds, 0);
      EXPECT_GT(r.steps, 0u);
    }
  }
}

TEST(TermGolden, ComposedDecidesOnEverySeedUnderEveryAdversary) {
  // The positive side of Corollary 9: A' = (game; consensus) terminates —
  // scripted against WSL game registers, random/stalling against atomic
  // ones.  "Terminated" under stalling means every live process decided.
  for (const TermAdversary adv :
       {TermAdversary::kScripted, TermAdversary::kRandom,
        TermAdversary::kStalling}) {
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
      const TermRecord r =
          run_term_scenario(make(Family::kComposed, adv, seed));
      ASSERT_FALSE(r.error) << to_string(adv) << " seed " << seed << ": "
                            << r.detail;
      EXPECT_TRUE(r.terminated) << to_string(adv) << " seed " << seed;
      EXPECT_TRUE(r.safety_ok) << to_string(adv) << " seed " << seed;
      EXPECT_GT(r.rounds, 0) << to_string(adv) << " seed " << seed;
      if (adv == TermAdversary::kStalling) {
        EXPECT_GT(r.stalled, 0) << "seed " << seed;
      }
    }
  }
}

TEST(TermGolden, ConsensusAndCoinTerminateUnderStalls) {
  // Wait-freedom of task T and the drift coin: a stalled strict minority
  // never blocks the live processes.
  for (const Family f : {Family::kConsensus, Family::kSharedCoin}) {
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
      const TermRecord r =
          run_term_scenario(make(f, TermAdversary::kStalling, seed));
      ASSERT_FALSE(r.error) << to_string(f) << " seed " << seed << ": "
                            << r.detail;
      EXPECT_TRUE(r.terminated) << to_string(f) << " seed " << seed;
      EXPECT_TRUE(r.safety_ok) << to_string(f) << " seed " << seed;
      EXPECT_EQ(r.stalled, 1) << "n=4 has exactly one strict-minority "
                              << "victim";
    }
  }
}

// ---------- enumeration ----------

TEST(TermEnumerate, SkipsInvalidPairsAndKeepsKeysUnique) {
  TermSweepOptions o;
  o.seed_begin = 0;
  o.seed_end = 3;
  o.process_counts = {4, 5};
  o.round_budgets = {32, 64};
  // 4 families × 3 adversaries minus the 2 invalid scripted pairs = 10
  // valid pairs, × 2 process counts × 2 round budgets × 3 seeds.
  const std::vector<TermScenario> all = enumerate_term_scenarios(o);
  EXPECT_EQ(all.size(), 10u * 2u * 2u * 3u);
  std::set<std::string> keys;
  for (const TermScenario& s : all) {
    EXPECT_TRUE(combination_valid(s.family, s.adversary)) << s.key();
    keys.insert(s.key());
  }
  EXPECT_EQ(keys.size(), all.size());
  // Seeds are the outermost axis.
  EXPECT_EQ(all.front().seed, 0u);
  EXPECT_EQ(all.back().seed, 2u);
}

// ---------- sweep digest + aggregate ----------

TermSweepOptions small_sweep(int threads) {
  TermSweepOptions o;
  o.seed_begin = 0;
  o.seed_end = 6;
  o.threads = threads;
  return o;
}

TEST(TermSweep, SmokeCountsAddUp) {
  const TermSummary sum = run_term_sweep(small_sweep(4));
  EXPECT_EQ(sum.scenarios, 10u * 6u);
  EXPECT_EQ(sum.errors, 0u)
      << (sum.failures.empty() ? "" : sum.failures.front());
  EXPECT_EQ(sum.safety_violations, 0u);
  // The game/scripted slice is capped (Theorem 6); everything else
  // terminates on these seeds.
  EXPECT_EQ(sum.capped, 6u);
  EXPECT_EQ(sum.terminated, sum.scenarios - 6u);
  EXPECT_GT(sum.total_steps, 0u);
  EXPECT_GT(sum.total_coin_flips, 0u);
  ASSERT_FALSE(sum.tail.empty());
  // Capped runs outlast every k: the tail never drops below them.
  for (const TailPoint& t : sum.tail) {
    EXPECT_GE(t.over, sum.capped) << "k=" << t.k;
  }
}

TEST(TermSweep, DigestIsIndependentOfThreadsAndBatch) {
  const TermSummary seq = run_term_sweep(small_sweep(1));
  TermSweepOptions par = small_sweep(4);
  par.batch_size = 3;
  const TermSummary con = run_term_sweep(par);
  EXPECT_EQ(seq.stable_text(), con.stable_text());
  EXPECT_EQ(seq.digest, con.digest);
}

TEST(TermSweep, DigestDependsOnTheAxes) {
  const TermSummary base = run_term_sweep(small_sweep(2));
  TermSweepOptions rounds = small_sweep(2);
  rounds.round_budgets = {32};
  EXPECT_NE(base.digest, run_term_sweep(rounds).digest);
  TermSweepOptions seeds = small_sweep(2);
  seeds.seed_begin = 6;
  seeds.seed_end = 12;
  EXPECT_NE(base.digest, run_term_sweep(seeds).digest);
}

TEST(TermSweep, DecisionRoundHistogramsFoldStably) {
  const TermSummary seq = run_term_sweep(small_sweep(1));
  TermSweepOptions par = small_sweep(4);
  par.batch_size = 2;
  const TermSummary con = run_term_sweep(par);
  ASSERT_EQ(seq.hists.size(), 4u);  // every family present
  ASSERT_EQ(con.hists.size(), seq.hists.size());
  std::uint64_t terminated = 0;
  std::uint64_t capped = 0;
  for (std::size_t i = 0; i < seq.hists.size(); ++i) {
    EXPECT_EQ(seq.hists[i].family, con.hists[i].family);
    EXPECT_EQ(seq.hists[i].buckets, con.hists[i].buckets);
    EXPECT_EQ(seq.hists[i].capped, con.hists[i].capped);
    std::uint64_t sum = 0;
    for (const std::uint64_t b : seq.hists[i].buckets) sum += b;
    EXPECT_EQ(sum, seq.hists[i].terminated);
    terminated += sum;
    capped += seq.hists[i].capped;
  }
  // Buckets partition the terminated runs; the capped column holds the
  // scripted Theorem 6 slice (6 seeds, never decides).
  EXPECT_EQ(terminated, seq.terminated);
  EXPECT_EQ(capped, 6u);
  EXPECT_NE(seq.stable_text().find("hist game capped 6"), std::string::npos)
      << seq.stable_text();
}

TEST(TermSweep, StableTextUsesIntegerRendering) {
  // 5/8 scenarios terminated must print as 0.6250 (integer math, not
  // locale- or FP-formatting-dependent).
  TermSweepOptions o;
  o.families = {Family::kGame};
  o.adversaries = {TermAdversary::kScripted, TermAdversary::kRandom};
  o.seed_begin = 0;
  o.seed_end = 4;
  const TermSummary sum = run_term_sweep(o);
  ASSERT_EQ(sum.scenarios, 8u);
  ASSERT_EQ(sum.terminated, 4u);  // the random half terminates
  EXPECT_NE(sum.stable_text().find("termination_rate 0.5000"),
            std::string::npos)
      << sum.stable_text();
}

// ---------- result store ----------

TEST(TermStore, RecordsAreCanonicalJsonInEnumerationOrder) {
  TermSweepOptions o = small_sweep(2);
  sweep::StringSink sink;
  (void)run_term_sweep(o, 0, &sink);
  const std::vector<TermScenario> scenarios = enumerate_term_scenarios(o);
  // One line per scenario, each starting with the scenario's key, then
  // one per-family decision-round histogram record per family present.
  std::istringstream is(sink.text());
  std::string line;
  std::size_t i = 0;
  std::size_t hists = 0;
  while (std::getline(is, line)) {
    if (i < scenarios.size()) {
      const std::string prefix = "{\"gi\":" + std::to_string(i) +
                                 ",\"key\":\"" + scenarios[i].key() +
                                 "\",\"mode\":\"term\",";
      EXPECT_EQ(line.compare(0, prefix.size(), prefix), 0)
          << "line " << i << ": " << line;
    } else {
      EXPECT_EQ(line.compare(0, 18, "{\"key\":\"term-hist/"), 0)
          << "trailer " << i << ": " << line;
      EXPECT_NE(line.find("\"mode\":\"term-hist\""), std::string::npos);
      ++hists;
    }
    EXPECT_EQ(line.back(), '}');
    ++i;
  }
  EXPECT_EQ(i - hists, scenarios.size());
  EXPECT_EQ(hists, 4u);  // all four families present in the small sweep
}

TEST(TermStore, BytesAreIndependentOfThreadsAndBatch) {
  sweep::StringSink a;
  (void)run_term_sweep(small_sweep(1), 0, &a);
  TermSweepOptions par = small_sweep(4);
  par.batch_size = 2;
  sweep::StringSink b;
  (void)run_term_sweep(par, 0, &b);
  EXPECT_EQ(a.text(), b.text());
  EXPECT_FALSE(a.text().empty());
}

TEST(TermStore, SafetySweepStoreIsAlsoByteStable) {
  sweep::SweepOptions o;
  o.seed_begin = 0;
  o.seed_end = 5;
  o.faults = {sweep::FaultKind::kNone, sweep::FaultKind::kMinorityCrash,
              sweep::FaultKind::kStall};
  o.threads = 1;
  sweep::StringSink a;
  (void)sweep::run_sweep(o, 0, &a);
  o.threads = 4;
  o.batch_size = 3;
  sweep::StringSink b;
  (void)sweep::run_sweep(o, 0, &b);
  EXPECT_EQ(a.text(), b.text());
  // Every record carries the safety mode marker and a verdict.
  EXPECT_NE(a.text().find("\"mode\":\"safety\""), std::string::npos);
  EXPECT_NE(a.text().find("\"verdict\":\"blocked\""), std::string::npos);
}

TEST(TermStore, JsonEscapingIsRfc8259) {
  sweep::Record r;
  r.str("key", "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(r.json(), "{\"key\":\"a\\\"b\\\\c\\nd\\te\\u0001f\"}");
  sweep::Record r2;
  r2.u64("n", 42).boolean("t", true).boolean("f", false).hex("h", 0xabULL);
  EXPECT_EQ(r2.json(),
            "{\"n\":42,\"t\":true,\"f\":false,"
            "\"h\":\"0x00000000000000ab\"}");
}

}  // namespace
}  // namespace rlt::term
