// Experiment P2 — checker scaling.
//
// The linearizability solver and the WSL tree checker are the measurement
// instruments of this reproduction; this bench tracks their cost as
// history size and write concurrency grow, so future changes can't
// silently regress the test suite's budget.
#include <benchmark/benchmark.h>

#include "checker/lin_checker.hpp"
#include "checker/wsl_checker.hpp"
#include "registers/alg2_register.hpp"
#include "registers/alg3_linearizer.hpp"
#include "sim/adversary.hpp"
#include "util/rng.hpp"

namespace {

using namespace rlt;

/// Generates a single-register history with `writers` concurrent writer
/// processes and `readers` readers from a random simulator run over a
/// linearizable register model.
history::History make_history(int writers, int readers, int ops_each,
                              std::uint64_t seed) {
  struct Bodies {
    static sim::Task writer(sim::Proc& p, int ops, int base) {
      for (int i = 0; i < ops; ++i) {
        co_await p.write(0, base + i);
      }
    }
    static sim::Task reader(sim::Proc& p, int ops) {
      for (int i = 0; i < ops; ++i) {
        (void)co_await p.read(0);
      }
    }
  };
  sim::Scheduler sched(seed);
  sched.add_register(0, sim::Semantics::kLinearizable, 0);
  for (int w = 0; w < writers; ++w) {
    sched.add_process("w", [w, ops_each](sim::Proc& p) {
      return Bodies::writer(p, ops_each, 100 * (w + 1));
    });
  }
  for (int r = 0; r < readers; ++r) {
    sched.add_process("r", [ops_each](sim::Proc& p) {
      return Bodies::reader(p, ops_each);
    });
  }
  sim::RandomAdversary adv(seed * 31 + 5);
  sched.run(adv, 1000000);
  return sched.global_history();
}

void BM_LinearizabilityCheck(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  const int ops_each = static_cast<int>(state.range(1));
  const history::History h = make_history(writers, 2, ops_each, 42);
  for (auto _ : state) {
    const auto r = checker::check_linearizable(h);
    benchmark::DoNotOptimize(r.ok);
  }
  state.SetLabel(std::to_string(h.size()) + " ops, " +
                 std::to_string(writers) + " writers");
}
BENCHMARK(BM_LinearizabilityCheck)
    ->Args({2, 2})
    ->Args({3, 3})
    ->Args({4, 4})
    ->Args({5, 5});

void BM_WslCheck(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  const int ops_each = static_cast<int>(state.range(1));
  const history::History h = make_history(writers, 2, ops_each, 42);
  for (auto _ : state) {
    const auto r = checker::check_write_strong_linearizable(h);
    benchmark::DoNotOptimize(r.ok);
  }
  state.SetLabel(std::to_string(h.size()) + " ops, " +
                 std::to_string(writers) + " writers");
}
BENCHMARK(BM_WslCheck)->Args({2, 2})->Args({3, 3})->Args({4, 4});

void BM_Alg3Linearizer(benchmark::State& state) {
  struct Bodies {
    static sim::Task writer(sim::Proc& p, registers::SimAlg2Register& r,
                            int slot, int ops) {
      for (int i = 0; i < ops; ++i) {
        co_await r.write(p, slot, 100 * (slot + 1) + i);
      }
    }
  };
  const int writers = static_cast<int>(state.range(0));
  sim::Scheduler sched(7);
  registers::SimAlg2Register reg(sched, writers, 100, 0);
  for (int w = 0; w < writers; ++w) {
    sched.add_process("w", [&reg, w](sim::Proc& p) {
      return Bodies::writer(p, reg, w, 3);
    });
  }
  sim::RandomAdversary adv(99);
  sched.run(adv, 1000000);
  for (auto _ : state) {
    const auto out = registers::run_alg3(reg.trace());
    benchmark::DoNotOptimize(out.sequence.size());
  }
  state.SetLabel(std::to_string(reg.trace().writes.size()) + " writes");
}
BENCHMARK(BM_Alg3Linearizer)->Arg(2)->Arg(4)->Arg(6);

}  // namespace

BENCHMARK_MAIN();
