// Experiment E2 — Theorem 7 / Corollary 8.
//
// Paper claim: with write strongly-linearizable registers, Algorithm 1
// terminates with probability 1 against a strong adversary; Lemma 19
// shows each round survives with probability at most 1/2, i.e., the
// termination round is stochastically dominated by Geometric(1/2)
// (expected value <= 2).
//
// Reproduction: the same scripted adversary plays its best effort against
// `WslModel` registers — it must commit the order of the concurrent R1
// writes BEFORE the coin flip.  We measure the termination-round
// distribution over many seeds for each commitment strategy and compare
// the survival curve against the 2^-k envelope.  Atomic registers
// (random schedule) are included for reference.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "game/game_runner.hpp"

namespace {

using namespace rlt;

void report(const char* label, const game::TerminationDistribution& dist,
            int runs) {
  std::printf("  %-18s runs=%-5d capped=%-3d mean-round=%.3f\n", label, runs,
              dist.capped_runs, dist.mean_round);
  std::printf("    k:         ");
  const int kmax =
      std::min<int>(8, static_cast<int>(dist.survival.size()) - 1);
  for (int k = 0; k <= kmax; ++k) std::printf("%8d", k);
  std::printf("\n    P(X>k):    ");
  for (int k = 0; k <= kmax; ++k) {
    std::printf("%8.4f", dist.survival[static_cast<std::size_t>(k)]);
  }
  std::printf("\n    2^-k:      ");
  for (int k = 0; k <= kmax; ++k) std::printf("%8.4f", std::pow(0.5, k));
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "E2 | Theorem 7 / Corollary 8: WSL registers force termination with "
      "probability 1\n"
      "Expected: zero capped runs; survival P(round > k) bounded by ~2^-k; "
      "mean <= ~2.\n\n");
  game::GameConfig cfg;
  cfg.n = 5;
  cfg.max_rounds = 1000;

  const int runs = 2000;
  for (const auto strat :
       {game::CommitStrategy::kHostZeroFirst,
        game::CommitStrategy::kHostOneFirst, game::CommitStrategy::kRandomOrder,
        game::CommitStrategy::kAlternate}) {
    const auto dist = game::measure_termination_rounds(
        cfg, sim::Semantics::kWriteStrong, strat, 1, runs);
    report(to_string(strat), dist, runs);
  }

  std::printf("\n  n sweep (random-order strategy, %d runs each):\n", 500);
  for (const int n : {3, 5, 8, 12}) {
    game::GameConfig c = cfg;
    c.n = n;
    const auto dist = game::measure_termination_rounds(
        c, sim::Semantics::kWriteStrong,
        game::CommitStrategy::kRandomOrder, 7, 500);
    std::printf("    n=%-3d mean=%.3f capped=%d\n", n, dist.mean_round,
                dist.capped_runs);
  }

  std::printf("\n  Reference: atomic registers, uniformly random strong "
              "adversary (500 runs):\n");
  {
    game::GameConfig c = cfg;
    c.max_rounds = 2000;
    const auto dist = game::measure_termination_rounds(
        c, sim::Semantics::kAtomic, game::CommitStrategy::kRandomOrder, 23,
        500);
    std::printf("    mean=%.3f capped=%d\n", dist.mean_round,
                dist.capped_runs);
  }
  std::printf(
      "\nResult: termination always occurs and the round distribution sits "
      "under the\ngeometric(1/2) envelope — matching Lemma 19 / Theorem 7.\n");
  return 0;
}
