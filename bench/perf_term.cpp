// Experiment P5 — termination-lab throughput.
//
// The termination sweep is the second workload class the engine serves:
// this bench tracks per-family scenario cost (consensus rounds, the
// composed A', the scripted Theorem 6 game) and end-to-end termination
// sweeps through the pool.  The digest is asserted stable across
// iterations — a throughput bench that silently changed behaviour would
// be worse than useless.
#include <benchmark/benchmark.h>

#include "term/term_scenario.hpp"
#include "term/term_sweep.hpp"
#include "util/assert.hpp"

namespace {

using namespace rlt;

term::TermScenario scenario(term::Family f, term::TermAdversary a,
                            std::uint64_t seed) {
  term::TermScenario s;
  s.family = f;
  s.adversary = a;
  s.processes = 4;
  s.seed = seed;
  s.max_rounds = 64;
  return s;
}

void run_scenario_bench(benchmark::State& state, term::Family f,
                        term::TermAdversary a) {
  // Cycle 16 seeds so the bench samples schedule variety; assert rerun
  // determinism on the fingerprints as we go.
  std::uint64_t fingerprints[16] = {};
  std::uint64_t iter = 0;
  for (auto _ : state) {
    const std::uint64_t seed = iter % 16;
    const term::TermRecord r = run_term_scenario(scenario(f, a, seed));
    benchmark::DoNotOptimize(r.outcome_hash);
    RLT_CHECK_MSG(!r.error, "bench scenario errored");
    RLT_CHECK_MSG(fingerprints[seed] == 0 ||
                      fingerprints[seed] == r.outcome_hash,
                  "outcome hash changed between reruns — nondeterminism");
    fingerprints[seed] = r.outcome_hash;
    ++iter;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(iter));
}

void BM_TermConsensus(benchmark::State& state) {
  run_scenario_bench(state, term::Family::kConsensus,
                     term::TermAdversary::kRandom);
}
BENCHMARK(BM_TermConsensus)->Unit(benchmark::kMicrosecond);

void BM_TermComposedRandom(benchmark::State& state) {
  run_scenario_bench(state, term::Family::kComposed,
                     term::TermAdversary::kRandom);
}
BENCHMARK(BM_TermComposedRandom)->Unit(benchmark::kMicrosecond);

void BM_TermComposedScripted(benchmark::State& state) {
  run_scenario_bench(state, term::Family::kComposed,
                     term::TermAdversary::kScripted);
}
BENCHMARK(BM_TermComposedScripted)->Unit(benchmark::kMicrosecond);

/// The Theorem 6 steady state: the scripted adversary drives every
/// budgeted round — cost is linear in the round budget, so this is the
/// expensive corner of the family.
void BM_TermGameScripted(benchmark::State& state) {
  run_scenario_bench(state, term::Family::kGame,
                     term::TermAdversary::kScripted);
}
BENCHMARK(BM_TermGameScripted)->Unit(benchmark::kMicrosecond);

/// End-to-end termination sweep (all families × adversaries), seeds
/// scaled by the range argument.
void BM_TermSweep(benchmark::State& state) {
  term::TermSweepOptions o;
  o.seed_begin = 0;
  o.seed_end = static_cast<std::uint64_t>(state.range(0));
  o.threads = 2;
  std::uint64_t digest = 0;
  std::uint64_t scenarios = 0;
  for (auto _ : state) {
    const term::TermSummary sum = run_term_sweep(o);
    benchmark::DoNotOptimize(sum.digest);
    RLT_CHECK_MSG(digest == 0 || digest == sum.digest,
                  "term digest changed between iterations — nondeterminism");
    digest = sum.digest;
    scenarios = sum.scenarios;
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(sum.scenarios));
  }
  state.counters["scenarios"] = static_cast<double>(scenarios);
}
BENCHMARK(BM_TermSweep)->Arg(10)->Arg(25)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
