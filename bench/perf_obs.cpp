// Experiment P7 — observability fabric overhead.
//
// The fabric's zero-cost-when-off contract, measured: an off-gate
// instrumentation site must cost one relaxed load and an untaken
// branch, an on-gate counter a thread-local array increment, and an
// instrumented sweep must stay within a few percent of a plain one
// (the CI gate in tools/obs_gate.py holds the end-to-end figure at 5%).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "sweep/store.hpp"
#include "sweep/sweep.hpp"

namespace {

using namespace rlt;

/// The hot-path cost with the gate off — the price every layer pays on
/// every already-shipped code path when nobody asked for metrics.
void BM_CounterGateOff(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    obs::count(obs::Counter::kCheckerDfsNodes);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterGateOff);

/// The same site with the gate on: relaxed load + thread-local shard
/// increment, still lock-free and allocation-free.
void BM_CounterGateOn(benchmark::State& state) {
  obs::set_enabled(true);
  obs::reset();
  for (auto _ : state) {
    obs::count(obs::Counter::kCheckerDfsNodes);
  }
  obs::set_enabled(false);
  obs::reset();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterGateOn);

/// Histogram insert (bit_width bucketing) with the gate on.
void BM_HistGateOn(benchmark::State& state) {
  obs::set_enabled(true);
  obs::reset();
  std::uint64_t v = 1;
  for (auto _ : state) {
    obs::hist(obs::Hist::kScenarioOps, v);
    v = v * 2862933555777941757ULL + 3037000493ULL;  // cheap LCG spread
  }
  obs::set_enabled(false);
  obs::reset();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistGateOn);

sweep::SweepOptions bench_sweep() {
  sweep::SweepOptions o;
  o.process_counts = {3};
  o.seed_begin = 0;
  o.seed_end = 30;
  o.threads = 2;
  return o;
}

/// End-to-end sweep, no fabric: the baseline the gate compares against.
void BM_SweepPlain(benchmark::State& state) {
  const sweep::SweepOptions o = bench_sweep();
  for (auto _ : state) {
    const sweep::SweepSummary sum = sweep::run_sweep(o);
    benchmark::DoNotOptimize(sum.digest);
  }
  state.SetItemsProcessed(state.iterations() * 360);  // scenarios/run
}
BENCHMARK(BM_SweepPlain)->Unit(benchmark::kMillisecond);

/// The same sweep fully instrumented: registry on, spans collected.
/// The gap between this and BM_SweepPlain is the fabric's whole-run
/// overhead (tools/obs_gate.py asserts <= 5% in CI).
void BM_SweepInstrumented(benchmark::State& state) {
  const sweep::SweepOptions o = bench_sweep();
  for (auto _ : state) {
    sweep::StringSink trace;
    obs::Hooks hooks;
    hooks.trace = &trace;
    const sweep::SweepSummary sum = sweep::run_sweep(o, 0, nullptr, &hooks);
    benchmark::DoNotOptimize(sum.digest);
    benchmark::DoNotOptimize(trace.text().size());
    obs::set_enabled(false);
    obs::reset();
  }
  state.SetItemsProcessed(state.iterations() * 360);
}
BENCHMARK(BM_SweepInstrumented)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
