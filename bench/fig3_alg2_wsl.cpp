// Experiment E3 — Algorithm 2 / Algorithm 3 / Figure 3 / Theorem 10.
//
// Paper claim: Algorithm 2 implements a write strongly-linearizable MWMR
// register from SWMR registers; Algorithm 3 is the on-line write
// strong-linearization function, ordering concurrent writes by their
// *partially formed* vector timestamps (entries initialized to ∞).
//
// Reproduction:
//  (a) the Figure 3 scenario — three concurrent writes where the ordering
//      decision at w2's publication uses w1's and w3's incomplete
//      timestamps — with the decision trace printed;
//  (b) random concurrent executions across seeds: every run must pass
//      the generic linearizability checker, the generic WSL tree checker
//      (Definition 4 on all prefixes) and Algorithm 3's verification
//      ((L) on every prefix plus the WS-prefix property (P));
//  (c) branching continuations of a common schedule prefix — where
//      Algorithm 4 fails (E4), Algorithm 2's tree stays WSL.
#include <cstdio>

#include "checker/lin_checker.hpp"
#include "checker/wsl_checker.hpp"
#include "registers/alg2_register.hpp"
#include "registers/alg3_linearizer.hpp"
#include "sim/adversary.hpp"

namespace {

using namespace rlt;
using registers::SimAlg2Register;

sim::Task writer_body(sim::Proc& p, SimAlg2Register& r, int slot,
                      int writes) {
  for (int i = 0; i < writes; ++i) {
    co_await r.write(p, slot, 100 * (slot + 1) + i);
  }
}

sim::Task reader_body(sim::Proc& p, SimAlg2Register& r, int reads) {
  for (int i = 0; i < reads; ++i) {
    (void)co_await r.read(p);
  }
}

void figure3() {
  std::printf("  (a) Figure 3: ordering concurrent writes from partial "
              "timestamps\n");
  sim::Scheduler sched(1);
  SimAlg2Register reg(sched, 3, 100, 0);
  for (int w = 0; w < 3; ++w) {
    sched.add_process("w", [&reg, w](sim::Proc& p) {
      return writer_body(p, reg, w, 1);
    });
  }
  sim::FixedStepAdversary adv({
      0,              // w1 begins its scan
      2, 2, 2, 2,     // w3 scans and publishes
      1, 1, 1, 1, 1,  // w2 scans and publishes (the decision point)
      0, 0, 0, 0,     // w1 finishes its scan and publishes
      2,              // w3 returns
  });
  sched.run(adv, 100);
  for (const auto& w : reg.trace().writes) {
    std::printf("      write v=%lld by slot %d: ts=%s published at t=%llu "
                "(interval %llu..%llu)\n",
                static_cast<long long>(w.value), w.writer,
                w.final_ts.to_string().c_str(),
                static_cast<unsigned long long>(w.val_write_time),
                static_cast<unsigned long long>(w.start),
                static_cast<unsigned long long>(w.end));
  }
  const auto out = registers::run_alg3(reg.trace());
  std::printf("      Algorithm 3 write order (hl op ids): ");
  for (const int id : out.write_sequence) std::printf("%d ", id);
  const auto ver = registers::verify_alg3_wsl(reg.trace(), reg.hl_history());
  std::printf("\n      verification: %s (%zu prefixes checked)\n\n",
              ver.ok ? "OK" : ver.error.c_str(), ver.prefixes_checked);
}

void random_sweep() {
  std::printf("  (b) random concurrent executions (3 writers x2, 2 readers "
              "x2):\n");
  int runs = 0;
  int lin_ok = 0;
  int wsl_ok = 0;
  int alg3_ok = 0;
  std::size_t prefixes = 0;
  std::size_t solver_calls = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    sim::Scheduler sched(seed);
    SimAlg2Register reg(sched, 3, 100, 0);
    for (int w = 0; w < 3; ++w) {
      sched.add_process("w", [&reg, w](sim::Proc& p) {
        return writer_body(p, reg, w, 2);
      });
    }
    for (int r = 0; r < 2; ++r) {
      sched.add_process("r", [&reg](sim::Proc& p) {
        return reader_body(p, reg, 2);
      });
    }
    sim::RandomAdversary adv(seed * 7 + 1);
    sched.run(adv, 100000);
    ++runs;
    lin_ok += checker::check_linearizable(reg.hl_history()).ok ? 1 : 0;
    const auto wsl = checker::check_write_strong_linearizable(reg.hl_history());
    wsl_ok += wsl.ok ? 1 : 0;
    solver_calls += wsl.solver_calls;
    const auto ver =
        registers::verify_alg3_wsl(reg.trace(), reg.hl_history());
    alg3_ok += ver.ok ? 1 : 0;
    prefixes += ver.prefixes_checked;
  }
  std::printf("      runs=%d linearizable=%d/%d wsl=%d/%d alg3=%d/%d "
              "(%zu prefixes, %zu solver calls)\n\n",
              runs, lin_ok, runs, wsl_ok, runs, alg3_ok, runs, prefixes,
              solver_calls);
}

sim::Task p2_body(sim::Proc& p, SimAlg2Register& r, bool with_write) {
  if (with_write) co_await r.write(p, 2, 300);
  (void)co_await r.read(p);
}

void branching() {
  std::printf("  (c) branching continuations of a shared prefix (Figure 4 "
              "schedule on Algorithm 2):\n");
  const auto run = [](bool h2) {
    sim::Scheduler sched(1);
    auto reg = std::make_unique<SimAlg2Register>(sched, 3, 100, 0);
    sched.add_process("p0", [&r = *reg](sim::Proc& p) {
      return writer_body(p, r, 0, 1);
    });
    sched.add_process("p1", [&r = *reg](sim::Proc& p) {
      return writer_body(p, r, 1, 1);
    });
    sched.add_process("p2", [&r = *reg, h2](sim::Proc& p) {
      return p2_body(p, r, h2);
    });
    std::vector<int> steps = {0, 0, 1, 1, 1, 1, 1};
    if (!h2) {
      steps.insert(steps.end(), {0, 0, 0, 2, 2, 2, 2});
    } else {
      steps.insert(steps.end(), {2, 2, 2, 2, 0, 0, 0, 2, 2, 2, 2});
    }
    sim::FixedStepAdversary adv(steps);
    sched.run(adv, 1000);
    return reg->hl_history();
  };
  const auto h1 = run(false);
  const auto h2 = run(true);
  const auto wsl = checker::check_write_strong_linearizable(
      std::vector<history::History>{h1, h2});
  std::printf("      WSL over the two-branch tree: %s (expected SAT — "
              "contrast with E4)\n",
              wsl.ok ? "SAT" : "UNSAT (BUG!)");
}

void ablation() {
  std::printf("\n  (d) ablation — drop the [∞,…,∞] initialization (paper, "
              "line 9):\n");
  int clean_ok = 0;
  int ablated_fail = 0;
  const int runs = 300;
  for (std::uint64_t seed = 1; seed <= runs; ++seed) {
    sim::Scheduler sched(seed);
    SimAlg2Register reg(sched, 4, 100, 0);
    for (int w = 0; w < 4; ++w) {
      sched.add_process("w", [&reg, w](sim::Proc& p) {
        return writer_body(p, reg, w, 1);
      });
    }
    sched.add_process("r",
                      [&reg](sim::Proc& p) { return reader_body(p, reg, 2); });
    sim::RandomAdversary adv(seed * 11 + 3);
    sched.run(adv, 100000);
    clean_ok +=
        registers::verify_alg3_wsl(reg.trace(), reg.hl_history()).ok ? 1 : 0;
    registers::Alg2Trace ablated = reg.trace();
    ablated.infinite_init = false;
    ablated_fail +=
        registers::verify_alg3_wsl(ablated, reg.hl_history()).ok ? 0 : 1;
  }
  std::printf("      with ∞-init (the paper's scheme):   %d/%d runs verify\n",
              clean_ok, runs);
  std::printf("      with 0-init (ablated):              %d/%d runs FAIL "
              "verification\n",
              ablated_fail, runs);
  std::printf("      (the ∞ entries make in-progress timestamps shrink as "
              "they form —\n       without them a barely-started write gets "
              "linearized too early)\n");
}

}  // namespace

int main() {
  std::printf(
      "E3 | Algorithm 2 + Algorithm 3 (Theorem 10, Figure 3): WSL MWMR "
      "registers\n     from SWMR registers via partially-formed vector "
      "timestamps\n\n");
  figure3();
  random_sweep();
  branching();
  ablation();
  std::printf("\nResult: (L) and (P) hold on every prefix of every run — "
              "Theorem 10 reproduced;\nthe ∞-initialization is load-bearing "
              "(ablation fails).\n");
  return 0;
}
