// Experiment E1 — Theorem 6, Figures 1 & 2.
//
// Paper claim: if Algorithm 1's registers are only linearizable, a strong
// adversary can construct a run in which all processes execute infinitely
// many rounds, REGARDLESS of the coin flips.
//
// Reproduction: the scripted adversary replays the Figure 1/2 schedule
// against the `LinearizableModel` registers at several horizons, process
// counts and seeds, for both the unbounded game and the Appendix B
// bounded variant.  Expected shape: zero terminations anywhere, and both
// coin outcomes occurring in every run (the adversary adapts to both).
#include <cstdio>

#include "game/game_runner.hpp"

namespace {

using namespace rlt;

void run_row(int n, int rounds, bool bounded, std::uint64_t seed) {
  game::GameConfig cfg;
  cfg.n = n;
  cfg.max_rounds = rounds;
  cfg.bounded = bounded;
  const game::GameRunResult r = game::run_scripted_game(
      cfg, sim::Semantics::kLinearizable,
      game::CommitStrategy::kRandomOrder, seed);
  int zeros = 0;
  int ones = 0;
  for (int j = 1; j <= r.rounds_reached; ++j) {
    if (r.coins[static_cast<std::size_t>(j)] == 0) ++zeros;
    if (r.coins[static_cast<std::size_t>(j)] == 1) ++ones;
  }
  std::printf(
      "  n=%-3d horizon=%-6d %-9s seed=%-4llu -> rounds=%-6d terminated=%s "
      "coins(0/1)=%d/%d actions=%llu\n",
      n, rounds, bounded ? "bounded" : "unbounded",
      static_cast<unsigned long long>(seed), r.rounds_reached,
      r.terminated ? "YES (BUG!)" : "no",
      zeros, ones, static_cast<unsigned long long>(r.actions));
}

}  // namespace

int main() {
  std::printf(
      "E1 | Theorem 6 / Figures 1-2: linearizable registers do not ensure "
      "termination\n"
      "Paper: the strong adversary keeps every process in the game forever "
      "by\nlinearizing the concurrent R1 writes AFTER seeing the coin "
      "flip.\nExpected: termination NEVER happens at any horizon.\n\n");
  for (const int n : {3, 5, 8}) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      run_row(n, 1000, /*bounded=*/false, seed);
    }
  }
  std::printf("\n  Appendix B bounded-register variant (Lemma 20):\n");
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    run_row(5, 1000, /*bounded=*/true, seed);
  }
  std::printf("\n  Long-horizon run (the schedule repeats forever):\n");
  run_row(5, 20000, /*bounded=*/false, 99);
  std::printf(
      "\nResult: every run survives its full horizon — matching Theorem 6's "
      "infinite run.\n");
  return 0;
}
