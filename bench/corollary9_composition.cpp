// Experiment E6 — Corollary 9: the derived algorithm A' = (Algorithm 1;A).
//
// Paper claim: for any randomized algorithm A solving a task T with
// probability-1 termination against a strong adversary, A' = "play the
// game, then run A" satisfies: with merely-linearizable game registers a
// strong adversary prevents A' from terminating; with write strongly-
// linearizable (or atomic) game registers, A' terminates and solves T.
//
// Reproduction: T = binary consensus, A = racing-rounds randomized
// consensus (src/consensus).  The consensus base objects stay atomic in
// all rows — only the game's three registers R change semantics.
#include <cstdio>

#include "consensus/composed.hpp"

namespace {

using namespace rlt;

void scripted_row(const char* label, sim::Semantics game_semantics,
                  int runs) {
  int game_done = 0;
  int decided = 0;
  int safe = 0;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(runs);
       ++seed) {
    game::GameConfig gc;
    gc.n = 4;
    gc.max_rounds = game_semantics == sim::Semantics::kLinearizable ? 50 : 500;
    consensus::ConsensusConfig cc;
    cc.n = 4;
    const auto r = consensus::run_composed_scripted(
        gc, cc, game_semantics, game::CommitStrategy::kRandomOrder, seed);
    game_done += r.game_terminated ? 1 : 0;
    decided += r.all_decided ? 1 : 0;
    safe += (r.agreement && r.validity) ? 1 : 0;
  }
  std::printf("  %-34s game-terminated %d/%d | consensus decided %d/%d | "
              "agreement+validity %d/%d\n",
              label, game_done, runs, decided, runs, safe, runs);
}

}  // namespace

int main() {
  std::printf(
      "E6 | Corollary 9: A' = (Algorithm 1 ; randomized consensus), strong "
      "adversary\n"
      "Expected: linearizable game registers -> A' never terminates "
      "(consensus never\nstarts); WSL/atomic game registers -> A' "
      "terminates with agreement+validity.\n\n");
  scripted_row("linearizable game registers", sim::Semantics::kLinearizable,
               30);
  scripted_row("WSL game registers", sim::Semantics::kWriteStrong, 30);
  {
    int game_done = 0;
    int decided = 0;
    int safe = 0;
    const int runs = 30;
    for (std::uint64_t seed = 1; seed <= runs; ++seed) {
      game::GameConfig gc;
      gc.n = 4;
      gc.max_rounds = 1000;
      consensus::ConsensusConfig cc;
      cc.n = 4;
      const auto r = consensus::run_composed_random(
          gc, cc, sim::Semantics::kAtomic, seed);
      game_done += r.game_terminated ? 1 : 0;
      decided += r.all_decided ? 1 : 0;
      safe += (r.agreement && r.validity) ? 1 : 0;
    }
    std::printf("  %-34s game-terminated %d/%d | consensus decided %d/%d | "
                "agreement+validity %d/%d\n",
                "atomic game registers (random)", game_done, runs, decided,
                runs, safe, runs);
  }
  std::printf(
      "\nResult: the separation lifts to any task T — linearizable-only "
      "registers stall\nA' forever, WSL registers restore probability-1 "
      "termination (Corollary 9).\n");
  return 0;
}
