// Experiment P3 — WSL tree-checker fast path.
//
// Tracks the write strong-linearizability checker on ADVERSARIAL
// multi-writer histories: every write overlaps every other write, and
// reads force commitment decisions while the uncommitted-candidate menu
// is at its largest (the factorial regime the ROADMAP warns about).
// Counters expose the solver-call and memo-cache behaviour so the bench
// history records WHY a run got faster, not just that it did.
#include <benchmark/benchmark.h>

#include "checker/wsl_checker.hpp"
#include "history/history.hpp"
#include "sim/adversary.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace rlt;
using history::History;
using history::OpKind;
using history::OpRecord;
using history::Time;

int add_op(History& h, int process, OpKind kind, history::Value v, Time invoke,
           Time response) {
  OpRecord op;
  op.process = process;
  op.reg = 0;
  op.kind = kind;
  op.value = v;
  op.invoke = invoke;
  op.response = response;
  return h.add(op);
}

/// `writers` fully-overlapping writes, a read that forces the committed
/// order to start with the LAST-invoked write (worst case for the lazy
/// extension search: every permutation prefix over `writers` candidates
/// is on the menu), a second read pinning the earliest write next, then
/// the writes complete one by one — each response a fresh decision point.
History adversarial_history(int writers) {
  History h;
  h.set_initial(0, 0);
  Time t = 0;
  std::vector<int> writes;
  for (int w = 0; w < writers; ++w) {
    writes.push_back(
        add_op(h, w, OpKind::kWrite, 100 + w, ++t, history::kNoTime));
  }
  const Time r1_invoke = ++t;
  const int r1 = add_op(h, writers, OpKind::kRead, 100 + writers - 1,
                        r1_invoke, ++t);
  (void)r1;
  const Time r2_invoke = ++t;
  const int r2 = add_op(h, writers, OpKind::kRead, 100, r2_invoke, ++t);
  (void)r2;
  for (int w = 0; w < writers; ++w) {
    h.complete_op(writes[static_cast<std::size_t>(w)], 100 + w, ++t);
  }
  return h;
}

void run_wsl(benchmark::State& state, const History& h,
             const checker::WslCheckOptions& options) {
  std::size_t solver_calls = 0, hits = 0, misses = 0;
  bool ok = false;
  for (auto _ : state) {
    const auto r = checker::check_write_strong_linearizable(h, options);
    benchmark::DoNotOptimize(r.ok);
    ok = r.ok;
    solver_calls = r.solver_calls;
    hits = r.cache_hits;
    misses = r.cache_misses;
  }
  state.counters["solver_calls"] = static_cast<double>(solver_calls);
  state.counters["cache_hits"] = static_cast<double>(hits);
  state.counters["cache_misses"] = static_cast<double>(misses);
  state.SetLabel(std::to_string(h.size()) + " ops, " +
                 (ok ? "wsl-ok" : "wsl-violation"));
}

void BM_WslAdversarial(benchmark::State& state) {
  const History h = adversarial_history(static_cast<int>(state.range(0)));
  run_wsl(state, h, {.memoize = true});
}
BENCHMARK(BM_WslAdversarial)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_WslAdversarialNoMemo(benchmark::State& state) {
  const History h = adversarial_history(static_cast<int>(state.range(0)));
  run_wsl(state, h, {.memoize = false});
}
BENCHMARK(BM_WslAdversarialNoMemo)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

/// Simulator-generated concurrent histories (the sweep's workload shape):
/// `writers` writer processes × 2 writes plus 2 readers over a
/// linearizable model, then tree-checked for WSL.
History sim_history(int writers, std::uint64_t seed) {
  struct Bodies {
    static sim::Task writer(sim::Proc& p, int ops, int base) {
      for (int i = 0; i < ops; ++i) co_await p.write(0, base + i);
    }
    static sim::Task reader(sim::Proc& p, int ops) {
      for (int i = 0; i < ops; ++i) (void)co_await p.read(0);
    }
  };
  sim::Scheduler sched(seed);
  sched.add_register(0, sim::Semantics::kLinearizable, 0);
  for (int w = 0; w < writers; ++w) {
    sched.add_process("w", [w](sim::Proc& p) {
      return Bodies::writer(p, 2, 100 * (w + 1));
    });
  }
  for (int r = 0; r < 2; ++r) {
    sched.add_process("r", [](sim::Proc& p) { return Bodies::reader(p, 2); });
  }
  sim::RandomAdversary adv(seed * 31 + 5);
  sched.run(adv, 1000000);
  return sched.global_history();
}

void BM_WslSimHistory(benchmark::State& state) {
  const History h = sim_history(static_cast<int>(state.range(0)), 42);
  run_wsl(state, h, {.memoize = true});
}
BENCHMARK(BM_WslSimHistory)->Arg(2)->Arg(3)->Arg(4);

/// Branching prefix trees: two runs that share a schedule prefix and then
/// diverge — the shape Definition 4 is really about (and where the
/// prefix-node memo key must not conflate branches).
void BM_WslBranchingTree(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  History h1 = adversarial_history(writers);
  // A second run: identical prefix, but the trailing write-completions
  // happen in reverse order (distinct times, same prefix events).
  History h2;
  h2.set_initial(0, 0);
  {
    Time t = 0;
    std::vector<int> writes;
    for (int w = 0; w < writers; ++w) {
      writes.push_back(
          add_op(h2, w, OpKind::kWrite, 100 + w, ++t, history::kNoTime));
    }
    const Time r1_invoke = ++t;
    const Time r1_respond = ++t;
    add_op(h2, writers, OpKind::kRead, 100 + writers - 1, r1_invoke,
           r1_respond);
    const Time r2_invoke = ++t;
    const Time r2_respond = ++t;
    add_op(h2, writers, OpKind::kRead, 100, r2_invoke, r2_respond);
    for (int w = writers - 1; w >= 1; --w) {
      h2.complete_op(writes[static_cast<std::size_t>(w)], 100 + w,
                     static_cast<Time>(100 + w));
    }
    h2.complete_op(writes[0], 100, 200);
  }
  std::size_t solver_calls = 0;
  for (auto _ : state) {
    const auto r =
        checker::check_write_strong_linearizable(std::vector<History>{h1, h2});
    benchmark::DoNotOptimize(r.ok);
    solver_calls = r.solver_calls;
  }
  state.counters["solver_calls"] = static_cast<double>(solver_calls);
}
BENCHMARK(BM_WslBranchingTree)->Arg(2)->Arg(3)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
