// Experiment P4 — end-to-end sweep throughput.
//
// The scenario sweep is the system's outer loop: this bench tracks
// scenarios/second through the full pipeline (simulate, record, check,
// fold) so checker and engine changes show up as one end-to-end number.
// The digest is asserted stable across iterations — a throughput bench
// that silently changed behaviour would be worse than useless.
#include <benchmark/benchmark.h>

#include "sweep/sweep.hpp"
#include "util/assert.hpp"

namespace {

using namespace rlt;

sweep::SweepOptions base_options(std::uint64_t seeds, int threads,
                                 int batch) {
  sweep::SweepOptions o;
  o.seed_begin = 0;
  o.seed_end = seeds;
  o.process_counts = {3};
  o.threads = threads;
  o.batch_size = batch;
  return o;
}

void run_sweep_bench(benchmark::State& state, const sweep::SweepOptions& o) {
  std::uint64_t digest = 0;
  std::uint64_t scenarios = 0;
  for (auto _ : state) {
    const sweep::SweepSummary sum = sweep::run_sweep(o);
    benchmark::DoNotOptimize(sum.digest);
    RLT_CHECK_MSG(digest == 0 || digest == sum.digest,
                  "sweep digest changed between iterations — nondeterminism");
    digest = sum.digest;
    scenarios = sum.scenarios;
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(sum.scenarios));
  }
  state.counters["scenarios"] = static_cast<double>(scenarios);
}

/// Full cross-product (all algorithms × semantics × adversaries), seeds
/// scaled by the range argument; single worker.
void BM_SweepAllAxes(benchmark::State& state) {
  run_sweep_bench(state,
                  base_options(static_cast<std::uint64_t>(state.range(0)),
                               /*threads=*/1, /*batch=*/16));
}
BENCHMARK(BM_SweepAllAxes)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

/// Thread scaling at a fixed cross-product.
void BM_SweepThreads(benchmark::State& state) {
  run_sweep_bench(state,
                  base_options(/*seeds=*/25,
                               static_cast<int>(state.range(0)),
                               /*batch=*/16));
}
BENCHMARK(BM_SweepThreads)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

/// Submit-overhead shape: one task per scenario vs batched tasks.
void BM_SweepBatch(benchmark::State& state) {
  run_sweep_bench(state,
                  base_options(/*seeds=*/25, /*threads=*/2,
                               static_cast<int>(state.range(0))));
}
BENCHMARK(BM_SweepBatch)->Arg(1)->Arg(16)->Arg(64)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
