// Experiment P4 — end-to-end sweep throughput.
//
// The scenario sweep is the system's outer loop: this bench tracks
// scenarios/second through the full pipeline (simulate, record, check,
// fold) so checker and engine changes show up as one end-to-end number.
// The digest is asserted stable across iterations — a throughput bench
// that silently changed behaviour would be worse than useless.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "sweep/fnv.hpp"
#include "sweep/shard.hpp"
#include "sweep/sweep.hpp"
#include "util/assert.hpp"

namespace {

using namespace rlt;

sweep::SweepOptions base_options(std::uint64_t seeds, int threads,
                                 int batch) {
  sweep::SweepOptions o;
  o.seed_begin = 0;
  o.seed_end = seeds;
  o.process_counts = {3};
  o.threads = threads;
  o.batch_size = batch;
  return o;
}

void run_sweep_bench(benchmark::State& state, const sweep::SweepOptions& o) {
  std::uint64_t digest = 0;
  std::uint64_t scenarios = 0;
  for (auto _ : state) {
    const sweep::SweepSummary sum = sweep::run_sweep(o);
    benchmark::DoNotOptimize(sum.digest);
    RLT_CHECK_MSG(digest == 0 || digest == sum.digest,
                  "sweep digest changed between iterations — nondeterminism");
    digest = sum.digest;
    scenarios = sum.scenarios;
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(sum.scenarios));
  }
  state.counters["scenarios"] = static_cast<double>(scenarios);
}

/// Full cross-product (all algorithms × semantics × adversaries), seeds
/// scaled by the range argument; single worker.
void BM_SweepAllAxes(benchmark::State& state) {
  run_sweep_bench(state,
                  base_options(static_cast<std::uint64_t>(state.range(0)),
                               /*threads=*/1, /*batch=*/16));
}
BENCHMARK(BM_SweepAllAxes)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

/// Thread scaling at a fixed cross-product.
void BM_SweepThreads(benchmark::State& state) {
  run_sweep_bench(state,
                  base_options(/*seeds=*/25,
                               static_cast<int>(state.range(0)),
                               /*batch=*/16));
}
BENCHMARK(BM_SweepThreads)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

/// Submit-overhead shape: one task per scenario vs batched tasks.
void BM_SweepBatch(benchmark::State& state) {
  run_sweep_bench(state,
                  base_options(/*seeds=*/25, /*threads=*/2,
                               static_cast<int>(state.range(0))));
}
BENCHMARK(BM_SweepBatch)->Arg(1)->Arg(16)->Arg(64)->Unit(
    benchmark::kMillisecond);

/// Distributed-sweep shape at the same cross-product as BM_SweepThreads:
/// N forked single-worker processes, one shard each, stores written to
/// disk and merged back in the parent (the sweep_shard.py fan-out minus
/// Python).  Measures the full coordinator overhead — fork, store IO,
/// merge validation + re-fold — against shared-memory thread scaling.
/// N = 1 is the passthrough case: one child, no bracket, no merge.
void BM_SweepSharded(benchmark::State& state) {
  const std::uint32_t shards = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t store_fnv = 0;
  std::uint64_t scenarios = 0;
  for (auto _ : state) {
    std::vector<std::string> paths;
    std::vector<pid_t> kids;
    for (std::uint32_t i = 0; i < shards; ++i) {
      paths.push_back("/tmp/rlt_bench_shard." + std::to_string(::getpid()) +
                      "." + std::to_string(i) + ".jsonl");
      const pid_t pid = ::fork();
      RLT_CHECK(pid >= 0);
      if (pid == 0) {
        sweep::SweepOptions o = base_options(/*seeds=*/25, /*threads=*/1,
                                             /*batch=*/16);
        o.shard = sweep::ShardSpec{i, shards};
        sweep::JsonlFileSink sink(paths.back());
        (void)sweep::run_sweep(o, 0, &sink);
        sink.close();
        ::_exit(0);
      }
      kids.push_back(pid);
    }
    for (const pid_t pid : kids) {
      int status = 0;
      RLT_CHECK(::waitpid(pid, &status, 0) == pid);
      RLT_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }
    std::vector<sweep::ShardStore> stores;
    for (const std::string& path : paths) {
      std::ifstream in(path, std::ios::binary);
      std::ostringstream text;
      text << in.rdbuf();
      stores.push_back({path, text.str()});
      std::remove(path.c_str());
    }
    std::string merged;
    std::uint64_t count = 0;
    if (shards == 1) {
      merged = std::move(stores.front().content);
      count = static_cast<std::uint64_t>(
          std::count(merged.begin(), merged.end(), '\n'));
    } else {
      sweep::MergeResult m = sweep::merge_shard_stores(stores);
      RLT_CHECK(!m.failed);
      merged = std::move(m.store);
      count = m.records;
    }
    benchmark::DoNotOptimize(merged.data());
    // The merged store must be the identical bytes every iteration —
    // a sharded run that drifted would invalidate the whole identity.
    std::uint64_t h = sweep::kFnvOffset;
    sweep::fnv_mix_str(h, merged);
    RLT_CHECK_MSG(store_fnv == 0 || store_fnv == h,
                  "merged store changed between iterations");
    store_fnv = h;
    scenarios = count;
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(count));
  }
  state.counters["scenarios"] = static_cast<double>(scenarios);
}
BENCHMARK(BM_SweepSharded)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
