// Experiment E4 — Algorithm 4 / Figure 4 / Theorems 12-13.
//
// Paper claim: the Lamport-clock register (Algorithm 4) is linearizable
// (Theorem 12) but NOT write strongly-linearizable (Theorem 13).  The
// proof constructs a history G with two concurrent writes w1, w2 (w2
// completes in G) and two extensions: in H (case 1) a read forces w1
// before w2; in H (case 2) a read forces w2 before w1 — so no prefix-
// monotone linearization function exists.
//
// Reproduction: both histories are produced by REAL runs of Algorithm 4
// under exact schedules (identical through G), then handed to the generic
// WSL tree checker, which must return UNSAT with a certificate, while
// plain linearizability holds for each branch, and random executions of
// Algorithm 4 remain linearizable (Theorem 12).
#include <cstdio>

#include "checker/lin_checker.hpp"
#include "checker/strong_checker.hpp"
#include "checker/wsl_checker.hpp"
#include "registers/alg4_register.hpp"
#include "sim/adversary.hpp"

namespace {

using namespace rlt;
using registers::SimAlg4Register;

sim::Task one_write(sim::Proc& p, SimAlg4Register& r, int slot,
                    history::Value v) {
  co_await r.write(p, slot, v);
}

sim::Task maybe_write_then_read(sim::Proc& p, SimAlg4Register& r, bool h2) {
  if (h2) co_await r.write(p, 2, 30);
  (void)co_await r.read(p);
}

history::History fig4(bool h2) {
  sim::Scheduler sched(1);
  auto reg = std::make_unique<SimAlg4Register>(sched, 3, 100, 0);
  sched.add_process("p1", [&r = *reg](sim::Proc& p) {
    return one_write(p, r, 0, 10);  // w1 writes v
  });
  sched.add_process("p2", [&r = *reg](sim::Proc& p) {
    return one_write(p, r, 1, 20);  // w2 writes v'
  });
  sched.add_process("p3", [&r = *reg, h2](sim::Proc& p) {
    return maybe_write_then_read(p, r, h2);  // (w3;) r
  });
  std::vector<int> steps = {0, 0, 1, 1, 1, 1, 1};  // G: w1 scans; w2 completes
  if (!h2) {
    steps.insert(steps.end(), {0, 0, 0, 2, 2, 2, 2});
  } else {
    steps.insert(steps.end(), {2, 2, 2, 2, 0, 0, 0, 2, 2, 2, 2});
  }
  sim::FixedStepAdversary adv(steps);
  sched.run(adv, 1000);
  return reg->hl_history();
}

void random_linearizability() {
  int ok = 0;
  const int runs = 200;
  for (std::uint64_t seed = 1; seed <= runs; ++seed) {
    sim::Scheduler sched(seed);
    SimAlg4Register reg(sched, 3, 100, 0);
    for (int w = 0; w < 3; ++w) {
      sched.add_process("w", [&reg, w](sim::Proc& p) {
        return maybe_write_then_read(p, reg, false);
      });
    }
    sched.add_process("wr", [&reg](sim::Proc& p) {
      return one_write(p, reg, 0, 77);
    });
    sim::RandomAdversary adv(seed * 3 + 11);
    sched.run(adv, 100000);
    ok += checker::check_linearizable(reg.hl_history()).ok ? 1 : 0;
  }
  std::printf("  Theorem 12 (random executions): linearizable %d/%d\n\n", ok,
              runs);
}

}  // namespace

int main() {
  std::printf(
      "E4 | Algorithm 4 / Figure 4 (Theorems 12-13): Lamport clocks give "
      "linearizability\n     but NOT write strong-linearizability\n\n");
  random_linearizability();

  const history::History h1 = fig4(false);
  const history::History h2 = fig4(true);
  std::printf("  History H (case 1) — read returns w2's value:\n%s\n",
              h1.to_string().c_str());
  std::printf("  History H (case 2) — read returns w1's value:\n%s\n",
              h2.to_string().c_str());
  std::printf("  shared prefix G identical: %s\n",
              h1.prefix_at(15) == h2.prefix_at(15) ? "yes" : "NO (BUG!)");
  std::printf("  linearizable individually: H1=%s H2=%s\n",
              checker::check_linearizable(h1).ok ? "yes" : "NO",
              checker::check_linearizable(h2).ok ? "yes" : "NO");
  std::printf("  WSL individually:          H1=%s H2=%s\n",
              checker::check_write_strong_linearizable(h1).ok ? "yes" : "NO",
              checker::check_write_strong_linearizable(h2).ok ? "yes" : "NO");

  const auto wsl = checker::check_write_strong_linearizable(
      std::vector<history::History>{h1, h2});
  std::printf("\n  WSL over the branching tree {H1, H2}: %s\n",
              wsl.ok ? "SAT (BUG!)" : "UNSAT");
  if (!wsl.ok) {
    std::printf("  certificate:\n    %s\n", wsl.explanation.c_str());
  }
  const auto strong = checker::check_strong_linearizable(
      std::vector<history::History>{h1, h2});
  std::printf("  strong linearizability over the tree: %s (implied)\n",
              strong.ok ? "SAT (BUG!)" : "UNSAT");
  std::printf(
      "\nResult: Theorem 12 (linearizable) and Theorem 13 (not WSL) both "
      "reproduced;\nthe checker's certificate mirrors Cases 1/2 of the "
      "paper's proof.\n");
  return 0;
}
