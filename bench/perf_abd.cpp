// Experiment P3 — ABD operation latency (in deliveries) and message cost
// as the cluster grows.
//
// ABD's costs are protocol-determined: a write needs one round trip to a
// majority (2n messages), a read needs two (query + write-back, 4n).
// The bench measures simulated wall cost (delivery steps until quorum
// under random delivery) and the message complexity, as n grows.
#include <benchmark/benchmark.h>

#include "mp/abd.hpp"
#include "util/rng.hpp"

namespace {

using namespace rlt;

void BM_AbdWrite(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t total_messages = 0;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    state.PauseTiming();
    mp::Network net;
    mp::AbdRegister reg(net, n, 0, 0);
    util::Rng rng(ops + 1);
    state.ResumeTiming();
    const int token = reg.begin_write(42);
    while (!reg.done(token)) {
      net.deliver_random(rng);
    }
    total_messages += net.messages_sent();
    ++ops;
  }
  state.counters["msgs/op"] =
      static_cast<double>(total_messages) / static_cast<double>(ops);
  state.SetLabel("ABD write, n=" + std::to_string(n));
}
BENCHMARK(BM_AbdWrite)->Arg(3)->Arg(5)->Arg(9)->Arg(15);

void BM_AbdRead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t total_messages = 0;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    state.PauseTiming();
    mp::Network net;
    mp::AbdRegister reg(net, n, 0, 0);
    util::Rng rng(ops + 1);
    state.ResumeTiming();
    const int token = reg.begin_read(1);
    while (!reg.done(token)) {
      net.deliver_random(rng);
    }
    total_messages += net.messages_sent();
    ++ops;
  }
  state.counters["msgs/op"] =
      static_cast<double>(total_messages) / static_cast<double>(ops);
  state.SetLabel("ABD read (with write-back), n=" + std::to_string(n));
}
BENCHMARK(BM_AbdRead)->Arg(3)->Arg(5)->Arg(9)->Arg(15);

void BM_AbdMixedWorkload(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mp::Network net;
    mp::AbdRegister reg(net, n, 0, 0);
    util::Rng rng(7);
    int token_w = reg.begin_write(1);
    int token_r = reg.begin_read(1);
    int writes = 4;
    int reads = 4;
    while (writes > 0 || reads > 0 || reg.pending_ops() > 0) {
      if (reg.done(token_w) && writes > 0) {
        token_w = reg.begin_write(10 + writes);
        --writes;
      }
      if (reg.done(token_r) && reads > 0) {
        token_r = reg.begin_read(1 + static_cast<int>(rng.uniform(
                                         static_cast<std::uint64_t>(n - 1))));
        --reads;
      }
      if (!net.deliver_random(rng)) break;
    }
    benchmark::DoNotOptimize(reg.hl_history().size());
  }
  state.SetLabel("interleaved writes+reads, n=" + std::to_string(n));
}
BENCHMARK(BM_AbdMixedWorkload)->Arg(3)->Arg(5)->Arg(9);

}  // namespace

BENCHMARK_MAIN();
