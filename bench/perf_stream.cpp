// Experiment P6 — streaming online checker throughput.
//
// The ROADMAP's line-rate goal: the streaming checker must sustain a
// high checked-ops/sec/core rate on unbounded streams (bounded live
// state, solver invoked only at read responses), and the solver's
// dominance pruning must keep adversarial many-writer windows — the
// worst case for the backtracking search — tractable.  items_per_second
// here IS the sustained ops-checked-per-second-per-core figure tracked
// in BENCH_checker.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "checker/lin_solver.hpp"
#include "checker/stream_checker.hpp"
#include "history/history.hpp"

namespace {

using namespace rlt;
using history::History;
using history::kNoTime;
using history::OpRecord;
using history::Time;
using history::Value;

/// A long stream of `blocks` overlap groups: one write of a cycling
/// value overlapped by `overlap - 1` reads returning it, then a
/// quiescent point.  The shape the frontier retires at line rate.
History make_stream_history(int blocks, int overlap) {
  History h;
  h.set_initial(0, 0);
  Time t = 0;
  for (int b = 0; b < blocks; ++b) {
    const Value v = static_cast<Value>(b % 3);
    OpRecord w;
    w.process = 0;
    w.reg = 0;
    w.kind = checker::OpKind::kWrite;
    w.value = v;
    w.invoke = ++t;
    w.response = kNoTime;
    const int wid = h.add(w);
    std::vector<int> readers;
    for (int r = 1; r < overlap; ++r) {
      OpRecord rd;
      rd.process = r;
      rd.reg = 0;
      rd.kind = checker::OpKind::kRead;
      rd.value = 0;
      rd.invoke = ++t;
      rd.response = kNoTime;
      readers.push_back(h.add(rd));
    }
    h.complete_op(wid, v, ++t);
    for (const int id : readers) h.complete_op(id, v, ++t);
  }
  return h;
}

/// The adversarial window: `writers` fully concurrent distinct-value
/// writes, `reads_per_value` concurrent reads of each, plus one read of
/// a value nobody writes (infeasible — the deepest search).
History many_writer_window(int writers, int reads_per_value) {
  History h;
  h.set_initial(0, 0);
  Time t = 0;
  std::vector<int> ids;
  for (int w = 0; w < writers; ++w) {
    OpRecord op;
    op.process = w;
    op.reg = 0;
    op.kind = checker::OpKind::kWrite;
    op.value = 10 + w;
    op.invoke = ++t;
    op.response = kNoTime;
    ids.push_back(h.add(op));
  }
  for (int w = 0; w < writers; ++w) {
    for (int r = 0; r < reads_per_value; ++r) {
      OpRecord op;
      op.process = writers + w;
      op.reg = 0;
      op.kind = checker::OpKind::kRead;
      op.value = 10 + w;
      op.invoke = ++t;
      op.response = kNoTime;
      ids.push_back(h.add(op));
    }
  }
  OpRecord bad;
  bad.process = 2 * writers;
  bad.reg = 0;
  bad.kind = checker::OpKind::kRead;
  bad.value = 99;
  bad.invoke = ++t;
  bad.response = kNoTime;
  ids.push_back(h.add(bad));
  Time r = 1000;
  for (const int id : ids) h.complete_op(id, h.op(id).value, ++r);
  return h;
}

/// Sustained streaming throughput at a given overlap degree.  The
/// reported items/sec is operations checked per second on one core.
void BM_StreamSustainedOpsPerSec(benchmark::State& state) {
  const int overlap = static_cast<int>(state.range(0));
  const History h = make_stream_history(/*blocks=*/2048, overlap);
  for (auto _ : state) {
    const checker::StreamingChecker c = checker::check_stream(h);
    benchmark::DoNotOptimize(c.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(h.size()));
  state.SetLabel(std::to_string(h.size()) + " ops, overlap " +
                 std::to_string(overlap));
}
BENCHMARK(BM_StreamSustainedOpsPerSec)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/// The pruning curve: adversarial windows by writer count, prune on/off
/// (range(1)).  The unpruned search is only run at sizes it can finish;
/// the pruned series extends past the seed's ~6-writer practical
/// ceiling.
void BM_ManyWriterWindow(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  const bool prune = state.range(1) != 0;
  const History h = many_writer_window(writers, /*reads_per_value=*/2);
  checker::LinProblem p;
  p.history = &h;
  p.prune = prune;
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker::feasible(p));
  }
  state.SetLabel(std::to_string(writers) + " writers, prune " +
                 (prune ? "on" : "off"));
}
BENCHMARK(BM_ManyWriterWindow)
    ->Args({4, 0})
    ->Args({5, 0})
    ->Args({4, 1})
    ->Args({5, 1})
    ->Args({6, 1})
    ->Args({7, 1})
    ->Args({8, 1})
    ->Args({9, 1})
    ->Args({10, 1});

}  // namespace

BENCHMARK_MAIN();
