// Experiment P6 — exploration-lab throughput.
//
// The schedule-search lab stacks many deterministic runs per search
// instance, so its unit economics matter: one greedy probe of the
// Theorem 6 game (the rounds objective's inner loop), one full
// counterexample hunt against the planted ABD ablation (search + ddmin
// shrink), the random-restart baseline, and the replay of a shrunk
// witness (the verification path CI and --replay exercise).  Outcome
// fingerprints are asserted stable across iterations — a search bench
// that silently changed behaviour would be worse than useless.
#include <benchmark/benchmark.h>

#include "explore/explore.hpp"
#include "explore/policy.hpp"
#include "sim/schedule_policy.hpp"
#include "term/term_scenario.hpp"
#include "util/assert.hpp"

namespace {

using namespace rlt;

explore::ExploreInstance ablation_instance() {
  explore::ExploreInstance e;
  e.objective = explore::Objective::kViolation;
  e.strategy = explore::Strategy::kGreedy;
  e.algorithm = sweep::Algorithm::kAbd;
  e.processes = 5;
  e.seed = 0;
  e.search_budget = 8;
  e.shrink_budget = 1024;
  e.abd_read_write_back = false;
  return e;
}

/// One greedy probe of the game under linearizable registers: the
/// adaptive adversary drives all 16 rounds to the cap every time.
void BM_ExploreGreedyGameProbe(benchmark::State& state) {
  term::TermProbeSpec spec;
  spec.family = term::Family::kGame;
  spec.processes = 4;
  spec.max_rounds = 16;
  spec.seed = 0;
  spec.game_semantics = sim::Semantics::kLinearizable;
  std::uint64_t fingerprint = 0;
  std::uint64_t iter = 0;
  for (auto _ : state) {
    explore::GreedyRoundsPolicy policy(/*game_aware=*/true, /*seed=*/0,
                                       /*jitter_den=*/0);
    sim::PolicyAdversary adv(policy);
    const term::TermProbe p = run_term_probe(spec, adv);
    benchmark::DoNotOptimize(p.outcome_hash);
    RLT_CHECK_MSG(p.rounds_score == 17, "greedy no longer reaches the cap");
    RLT_CHECK_MSG(fingerprint == 0 || fingerprint == p.outcome_hash,
                  "outcome hash changed between reruns — nondeterminism");
    fingerprint = p.outcome_hash;
    ++iter;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(iter));
}
BENCHMARK(BM_ExploreGreedyGameProbe)->Unit(benchmark::kMicrosecond);

/// Full counterexample pipeline: greedy search finds the planted
/// no-write-back violation and ddmin shrinks it to local minimality.
void BM_ExploreAblationHuntAndShrink(benchmark::State& state) {
  std::uint64_t fingerprint = 0;
  std::uint64_t iter = 0;
  for (auto _ : state) {
    const explore::ExploreOutcome o =
        explore::run_explore_instance(ablation_instance());
    benchmark::DoNotOptimize(o.trace_fnv);
    RLT_CHECK_MSG(o.found_rank == 3, "the planted violation went unfound");
    RLT_CHECK_MSG(o.locally_minimal, "shrink no longer reaches minimality");
    RLT_CHECK_MSG(fingerprint == 0 || fingerprint == o.fingerprint,
                  "fingerprint changed between reruns — nondeterminism");
    fingerprint = o.fingerprint;
    ++iter;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(iter));
}
BENCHMARK(BM_ExploreAblationHuntAndShrink)->Unit(benchmark::kMicrosecond);

/// The budgeted-random baseline on the same workload (same budget, no
/// shrink): what sampling costs where searching succeeds.
void BM_ExploreRandomRestartBaseline(benchmark::State& state) {
  explore::ExploreInstance e = ablation_instance();
  e.strategy = explore::Strategy::kRandom;
  e.shrink_budget = 0;
  std::uint64_t iter = 0;
  for (auto _ : state) {
    const explore::ExploreOutcome o = explore::run_explore_instance(e);
    benchmark::DoNotOptimize(o.best_score);
    ++iter;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(iter));
}
BENCHMARK(BM_ExploreRandomRestartBaseline)->Unit(benchmark::kMicrosecond);

/// Replaying the shrunk witness — the verification path.
void BM_ExploreReplayShrunkWitness(benchmark::State& state) {
  const explore::ExploreInstance e = ablation_instance();
  const explore::ExploreOutcome o = explore::run_explore_instance(e);
  RLT_CHECK_MSG(o.found_rank == 3, "no witness to replay");
  std::uint64_t iter = 0;
  for (auto _ : state) {
    const explore::ReplayReport rep =
        explore::replay_trace(e, o.best_trace, o.fallback_seed);
    benchmark::DoNotOptimize(rep.fingerprint);
    RLT_CHECK_MSG(rep.fingerprint == o.fingerprint,
                  "replay diverged from the recorded witness");
    ++iter;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(iter));
}
BENCHMARK(BM_ExploreReplayShrunkWitness)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
