// Experiment P1 — the engineering cost of write strong-linearizability.
//
// Section 5 of the paper: achieving WSL is *harder* than achieving plain
// linearizability.  Algorithm 2 pays for that hardness concretely: each
// write maintains an n-entry vector timestamp (n base-register reads plus
// O(n) comparison work per read), while Algorithm 4 carries one scalar
// Lamport clock.  This bench quantifies the gap on real threads (seqlock
// SWMR base registers), against a plain mutex register for calibration.
#include <benchmark/benchmark.h>

#include <thread>

#include "registers/thread_alg2.hpp"
#include "registers/thread_alg4.hpp"

namespace {

using namespace rlt::registers;

void BM_Alg2Write(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ThreadAlg2Register reg(n, 0, /*record=*/false);
  std::int64_t v = 0;
  for (auto _ : state) {
    reg.write(0, ++v);
  }
  state.SetLabel("WSL vector-timestamp write, n=" + std::to_string(n));
}
BENCHMARK(BM_Alg2Write)->Arg(2)->Arg(4)->Arg(8);

void BM_Alg4Write(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ThreadAlg4Register reg(n, 0, /*record=*/false);
  std::int64_t v = 0;
  for (auto _ : state) {
    reg.write(0, ++v);
  }
  state.SetLabel("linearizable Lamport-clock write, n=" + std::to_string(n));
}
BENCHMARK(BM_Alg4Write)->Arg(2)->Arg(4)->Arg(8);

void BM_Alg2Read(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ThreadAlg2Register reg(n, 0, /*record=*/false);
  reg.write(0, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.read(0));
  }
}
BENCHMARK(BM_Alg2Read)->Arg(2)->Arg(4)->Arg(8);

void BM_Alg4Read(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ThreadAlg4Register reg(n, 0, /*record=*/false);
  reg.write(0, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.read(0));
  }
}
BENCHMARK(BM_Alg4Read)->Arg(2)->Arg(4)->Arg(8);

void BM_LockedRegisterWrite(benchmark::State& state) {
  LockedMwmrRegister reg(0);
  std::int64_t v = 0;
  for (auto _ : state) {
    reg.write(++v);
  }
  state.SetLabel("mutex MWMR register write (calibration)");
}
BENCHMARK(BM_LockedRegisterWrite);

/// Contended mixed workload: each thread alternates write and read on its
/// own slot; measures throughput under real concurrency.
template <class Register>
void contended_loop(benchmark::State& state, Register& reg) {
  const int me = static_cast<int>(state.thread_index());
  std::int64_t v = 0;
  for (auto _ : state) {
    reg.write(me, ++v);
    benchmark::DoNotOptimize(reg.read(me));
  }
}

void BM_Alg2Contended(benchmark::State& state) {
  static ThreadAlg2Register* reg = nullptr;
  if (state.thread_index() == 0) {
    reg = new ThreadAlg2Register(static_cast<int>(state.threads()), 0,
                                 /*record=*/false);
  }
  contended_loop(state, *reg);
  if (state.thread_index() == 0) {
    delete reg;
    reg = nullptr;
  }
}
BENCHMARK(BM_Alg2Contended)->Threads(2)->Threads(4)->UseRealTime();

void BM_Alg4Contended(benchmark::State& state) {
  static ThreadAlg4Register* reg = nullptr;
  if (state.thread_index() == 0) {
    reg = new ThreadAlg4Register(static_cast<int>(state.threads()), 0,
                                 /*record=*/false);
  }
  contended_loop(state, *reg);
  if (state.thread_index() == 0) {
    delete reg;
    reg = nullptr;
  }
}
BENCHMARK(BM_Alg4Contended)->Threads(2)->Threads(4)->UseRealTime();

void BM_SeqlockRead(benchmark::State& state) {
  SeqlockSWMR<Alg2Tuple> reg(Alg2Tuple{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.read());
  }
  state.SetLabel("base SWMR register read (seqlock)");
}
BENCHMARK(BM_SeqlockRead);

void BM_SeqlockWrite(benchmark::State& state) {
  SeqlockSWMR<Alg2Tuple> reg(Alg2Tuple{});
  Alg2Tuple t;
  for (auto _ : state) {
    ++t.value;
    reg.write(t);
  }
  state.SetLabel("base SWMR register write (seqlock)");
}
BENCHMARK(BM_SeqlockWrite);

}  // namespace

BENCHMARK_MAIN();
