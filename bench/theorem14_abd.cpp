// Experiment E5 — Theorem 14 / Lemma 67: every linearizable SWMR register
// is write strongly-linearizable; in particular ABD.
//
// Reproduction: random ABD executions (asynchronous message passing,
// adversarial delivery order, up to a minority of crash faults).  Every
// recorded history must pass
//   (1) the linearizability checker (ABD's classic guarantee),
//   (2) the generic WSL tree checker (Definition 4 on all prefixes), and
//   (3) the executable f* construction (Lemma 67): prune the trailing
//       pending write from a deterministic linearization of each prefix,
//       verify each pruned sequence is still a linearization and that the
//       write sequences grow only by appending.
#include <cstdio>

#include "checker/lin_checker.hpp"
#include "checker/wsl_checker.hpp"
#include "mp/abd.hpp"
#include "mp/f_star.hpp"
#include "util/rng.hpp"

namespace {

using namespace rlt;

history::History run_abd(std::uint64_t seed, int n, int crashes,
                         std::uint64_t* messages) {
  mp::Network net;
  mp::AbdRegister reg(net, n, 0, 0);
  util::Rng rng(seed);
  int writes_left = 3;
  int reads_left = 4;
  history::Value next_value = 1;
  std::vector<int> tokens;
  std::vector<mp::NodeId> free_readers;
  for (int i = 1; i < n; ++i) free_readers.push_back(i);
  int crashed = 0;
  int last_write_token = -1;

  for (int step = 0; step < 30000; ++step) {
    const std::uint64_t pick = rng.uniform(10);
    if (pick == 0 && writes_left > 0 &&
        (last_write_token < 0 || reg.done(last_write_token))) {
      last_write_token = reg.begin_write(next_value++);
      --writes_left;
      continue;
    }
    if (pick == 1 && reads_left > 0 && !free_readers.empty()) {
      const mp::NodeId reader = free_readers.back();
      free_readers.pop_back();
      (void)reg.begin_read(reader);
      --reads_left;
      continue;
    }
    if (pick == 2 && crashed < crashes) {
      const auto victim =
          1 + static_cast<mp::NodeId>(rng.uniform(
                  static_cast<std::uint64_t>(n - 1)));
      if (!net.crashed(victim)) {
        net.crash(victim);
        ++crashed;
      }
      continue;
    }
    if (!net.deliver_random(rng) && writes_left == 0 && reads_left == 0) {
      break;
    }
  }
  *messages = net.messages_sent();
  return reg.hl_history();
}

void sweep(const char* label, int n, int crashes, int runs) {
  int lin_ok = 0;
  int wsl_ok = 0;
  int fstar_ok = 0;
  std::uint64_t total_messages = 0;
  std::size_t prefixes = 0;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(runs);
       ++seed) {
    std::uint64_t messages = 0;
    const history::History h = run_abd(seed, n, crashes, &messages);
    total_messages += messages;
    lin_ok += checker::check_linearizable(h).ok ? 1 : 0;
    wsl_ok += checker::check_write_strong_linearizable(h).ok ? 1 : 0;
    const auto fs = mp::check_swmr_write_strong(h);
    fstar_ok += fs.ok ? 1 : 0;
    prefixes += fs.prefixes_checked;
  }
  std::printf("  %-28s n=%-3d crashes<=%d: linearizable %d/%d | WSL %d/%d | "
              "f* %d/%d (%zu prefixes) | avg msgs %.0f\n",
              label, n, crashes, lin_ok, runs, wsl_ok, runs, fstar_ok, runs,
              prefixes, static_cast<double>(total_messages) / runs);
}

}  // namespace

void write_back_ablation() {
  using namespace rlt;
  std::printf("\n  Ablation — ABD without the read write-back phase:\n");
  int violations = 0;
  const int runs = 200;
  for (std::uint64_t seed = 1; seed <= runs; ++seed) {
    mp::Network net;
    mp::AbdRegister reg(net, 3, 0, 0, /*read_write_back=*/false);
    util::Rng rng(seed);
    const int w = reg.begin_write(7);
    const int ra = reg.begin_read(1);
    for (int i = 0; i < 6; ++i) net.deliver_random(rng);
    if (!reg.done(ra)) continue;
    const int rb = reg.begin_read(2);
    for (int i = 0; i < 2000 && !reg.done(rb); ++i) net.deliver_random(rng);
    while (!reg.done(w)) net.deliver_random(rng);
    if (!checker::check_linearizable(reg.hl_history()).ok) ++violations;
  }
  std::printf("    new/old inversions found: %d/%d runs — the write-back "
              "phase is what makes\n    multi-reader ABD linearizable (and "
              "hence, by Theorem 14, WSL)\n",
              violations, runs);
}

int main() {
  std::printf(
      "E5 | Theorem 14: any linearizable SWMR register implementation is "
      "write\n     strongly-linearizable — exercised on ABD over "
      "asynchronous message passing\n\n");
  sweep("crash-free", 3, 0, 100);
  sweep("crash-free", 5, 0, 100);
  sweep("crash-free", 7, 0, 50);
  sweep("minority crashes", 5, 2, 100);
  sweep("minority crashes", 7, 3, 50);
  write_back_ablation();
  std::printf(
      "\nResult: every ABD history passes linearizability, Definition 4, "
      "and the f*\nconstruction — Theorem 14 reproduced (ABD is WSL though "
      "not strongly linearizable).\n");
  return 0;
}
