# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/ablation_test[1]_include.cmake")
include("/root/repo/build/checker_test[1]_include.cmake")
include("/root/repo/build/consensus_test[1]_include.cmake")
include("/root/repo/build/coverage_test[1]_include.cmake")
include("/root/repo/build/game_test[1]_include.cmake")
include("/root/repo/build/history_test[1]_include.cmake")
include("/root/repo/build/lin_solver_test[1]_include.cmake")
include("/root/repo/build/mp_abd_test[1]_include.cmake")
include("/root/repo/build/property_test[1]_include.cmake")
include("/root/repo/build/registers_test[1]_include.cmake")
include("/root/repo/build/sim_test[1]_include.cmake")
include("/root/repo/build/sweep_test[1]_include.cmake")
include("/root/repo/build/thread_registers_test[1]_include.cmake")
include("/root/repo/build/util_test[1]_include.cmake")
subdirs("_deps/googletest-build")
