file(REMOVE_RECURSE
  "CMakeFiles/example_checker_demo.dir/examples/checker_demo.cpp.o"
  "CMakeFiles/example_checker_demo.dir/examples/checker_demo.cpp.o.d"
  "examples/example_checker_demo"
  "examples/example_checker_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_checker_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
