# Empty dependencies file for example_checker_demo.
# This may be replaced when dependencies are built.
