# Empty dependencies file for bench_theorem14_abd.
# This may be replaced when dependencies are built.
