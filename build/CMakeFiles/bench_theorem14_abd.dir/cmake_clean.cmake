file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem14_abd.dir/bench/theorem14_abd.cpp.o"
  "CMakeFiles/bench_theorem14_abd.dir/bench/theorem14_abd.cpp.o.d"
  "bench/bench_theorem14_abd"
  "bench/bench_theorem14_abd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem14_abd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
