# Empty dependencies file for consensus_test.
# This may be replaced when dependencies are built.
