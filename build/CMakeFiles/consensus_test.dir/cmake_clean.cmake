file(REMOVE_RECURSE
  "CMakeFiles/consensus_test.dir/tests/consensus_test.cpp.o"
  "CMakeFiles/consensus_test.dir/tests/consensus_test.cpp.o.d"
  "consensus_test"
  "consensus_test.pdb"
  "consensus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consensus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
