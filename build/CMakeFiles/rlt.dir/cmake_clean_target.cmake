file(REMOVE_RECURSE
  "librlt.a"
)
