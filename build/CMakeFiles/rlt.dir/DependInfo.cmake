
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checker/lin_checker.cpp" "CMakeFiles/rlt.dir/src/checker/lin_checker.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/checker/lin_checker.cpp.o.d"
  "/root/repo/src/checker/lin_solver.cpp" "CMakeFiles/rlt.dir/src/checker/lin_solver.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/checker/lin_solver.cpp.o.d"
  "/root/repo/src/checker/spec.cpp" "CMakeFiles/rlt.dir/src/checker/spec.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/checker/spec.cpp.o.d"
  "/root/repo/src/checker/strong_checker.cpp" "CMakeFiles/rlt.dir/src/checker/strong_checker.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/checker/strong_checker.cpp.o.d"
  "/root/repo/src/checker/wsl_checker.cpp" "CMakeFiles/rlt.dir/src/checker/wsl_checker.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/checker/wsl_checker.cpp.o.d"
  "/root/repo/src/consensus/composed.cpp" "CMakeFiles/rlt.dir/src/consensus/composed.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/consensus/composed.cpp.o.d"
  "/root/repo/src/consensus/rand_consensus.cpp" "CMakeFiles/rlt.dir/src/consensus/rand_consensus.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/consensus/rand_consensus.cpp.o.d"
  "/root/repo/src/consensus/shared_coin.cpp" "CMakeFiles/rlt.dir/src/consensus/shared_coin.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/consensus/shared_coin.cpp.o.d"
  "/root/repo/src/game/game.cpp" "CMakeFiles/rlt.dir/src/game/game.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/game/game.cpp.o.d"
  "/root/repo/src/game/game_runner.cpp" "CMakeFiles/rlt.dir/src/game/game_runner.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/game/game_runner.cpp.o.d"
  "/root/repo/src/game/theorem6_adversary.cpp" "CMakeFiles/rlt.dir/src/game/theorem6_adversary.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/game/theorem6_adversary.cpp.o.d"
  "/root/repo/src/history/event.cpp" "CMakeFiles/rlt.dir/src/history/event.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/history/event.cpp.o.d"
  "/root/repo/src/history/history.cpp" "CMakeFiles/rlt.dir/src/history/history.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/history/history.cpp.o.d"
  "/root/repo/src/history/recorder.cpp" "CMakeFiles/rlt.dir/src/history/recorder.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/history/recorder.cpp.o.d"
  "/root/repo/src/mp/abd.cpp" "CMakeFiles/rlt.dir/src/mp/abd.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/mp/abd.cpp.o.d"
  "/root/repo/src/mp/f_star.cpp" "CMakeFiles/rlt.dir/src/mp/f_star.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/mp/f_star.cpp.o.d"
  "/root/repo/src/registers/alg2_register.cpp" "CMakeFiles/rlt.dir/src/registers/alg2_register.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/registers/alg2_register.cpp.o.d"
  "/root/repo/src/registers/alg3_linearizer.cpp" "CMakeFiles/rlt.dir/src/registers/alg3_linearizer.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/registers/alg3_linearizer.cpp.o.d"
  "/root/repo/src/registers/alg4_register.cpp" "CMakeFiles/rlt.dir/src/registers/alg4_register.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/registers/alg4_register.cpp.o.d"
  "/root/repo/src/registers/thread_alg2.cpp" "CMakeFiles/rlt.dir/src/registers/thread_alg2.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/registers/thread_alg2.cpp.o.d"
  "/root/repo/src/registers/thread_alg4.cpp" "CMakeFiles/rlt.dir/src/registers/thread_alg4.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/registers/thread_alg4.cpp.o.d"
  "/root/repo/src/registers/vector_ts.cpp" "CMakeFiles/rlt.dir/src/registers/vector_ts.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/registers/vector_ts.cpp.o.d"
  "/root/repo/src/sim/adversary.cpp" "CMakeFiles/rlt.dir/src/sim/adversary.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/sim/adversary.cpp.o.d"
  "/root/repo/src/sim/linearizable_model.cpp" "CMakeFiles/rlt.dir/src/sim/linearizable_model.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/sim/linearizable_model.cpp.o.d"
  "/root/repo/src/sim/regmodel.cpp" "CMakeFiles/rlt.dir/src/sim/regmodel.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/sim/regmodel.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "CMakeFiles/rlt.dir/src/sim/scheduler.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/wsl_model.cpp" "CMakeFiles/rlt.dir/src/sim/wsl_model.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/sim/wsl_model.cpp.o.d"
  "/root/repo/src/sweep/pool.cpp" "CMakeFiles/rlt.dir/src/sweep/pool.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/sweep/pool.cpp.o.d"
  "/root/repo/src/sweep/scenario.cpp" "CMakeFiles/rlt.dir/src/sweep/scenario.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/sweep/scenario.cpp.o.d"
  "/root/repo/src/sweep/sweep.cpp" "CMakeFiles/rlt.dir/src/sweep/sweep.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/sweep/sweep.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "CMakeFiles/rlt.dir/src/util/logging.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/rlt.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/rlt.dir/src/util/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
