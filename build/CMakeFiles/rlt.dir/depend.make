# Empty dependencies file for rlt.
# This may be replaced when dependencies are built.
