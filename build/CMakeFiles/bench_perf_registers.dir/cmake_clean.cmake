file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_registers.dir/bench/perf_registers.cpp.o"
  "CMakeFiles/bench_perf_registers.dir/bench/perf_registers.cpp.o.d"
  "bench/bench_perf_registers"
  "bench/bench_perf_registers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
