# Empty dependencies file for bench_perf_registers.
# This may be replaced when dependencies are built.
