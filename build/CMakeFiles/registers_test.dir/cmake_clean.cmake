file(REMOVE_RECURSE
  "CMakeFiles/registers_test.dir/tests/registers_test.cpp.o"
  "CMakeFiles/registers_test.dir/tests/registers_test.cpp.o.d"
  "registers_test"
  "registers_test.pdb"
  "registers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/registers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
