# Empty dependencies file for registers_test.
# This may be replaced when dependencies are built.
