# Empty dependencies file for bench_perf_checker.
# This may be replaced when dependencies are built.
