file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_checker.dir/bench/perf_checker.cpp.o"
  "CMakeFiles/bench_perf_checker.dir/bench/perf_checker.cpp.o.d"
  "bench/bench_perf_checker"
  "bench/bench_perf_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
