# Empty dependencies file for sweep_main.
# This may be replaced when dependencies are built.
