file(REMOVE_RECURSE
  "CMakeFiles/sweep_main.dir/tools/sweep_main.cpp.o"
  "CMakeFiles/sweep_main.dir/tools/sweep_main.cpp.o.d"
  "sweep_main"
  "sweep_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
