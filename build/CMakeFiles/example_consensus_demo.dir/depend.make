# Empty dependencies file for example_consensus_demo.
# This may be replaced when dependencies are built.
