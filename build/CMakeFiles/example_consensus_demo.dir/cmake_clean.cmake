file(REMOVE_RECURSE
  "CMakeFiles/example_consensus_demo.dir/examples/consensus_demo.cpp.o"
  "CMakeFiles/example_consensus_demo.dir/examples/consensus_demo.cpp.o.d"
  "examples/example_consensus_demo"
  "examples/example_consensus_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_consensus_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
