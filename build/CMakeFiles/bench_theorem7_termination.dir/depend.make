# Empty dependencies file for bench_theorem7_termination.
# This may be replaced when dependencies are built.
