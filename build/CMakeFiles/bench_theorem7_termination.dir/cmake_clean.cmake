file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem7_termination.dir/bench/theorem7_termination.cpp.o"
  "CMakeFiles/bench_theorem7_termination.dir/bench/theorem7_termination.cpp.o.d"
  "bench/bench_theorem7_termination"
  "bench/bench_theorem7_termination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem7_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
