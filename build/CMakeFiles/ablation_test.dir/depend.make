# Empty dependencies file for ablation_test.
# This may be replaced when dependencies are built.
