file(REMOVE_RECURSE
  "CMakeFiles/ablation_test.dir/tests/ablation_test.cpp.o"
  "CMakeFiles/ablation_test.dir/tests/ablation_test.cpp.o.d"
  "ablation_test"
  "ablation_test.pdb"
  "ablation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
