file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_alg2_wsl.dir/bench/fig3_alg2_wsl.cpp.o"
  "CMakeFiles/bench_fig3_alg2_wsl.dir/bench/fig3_alg2_wsl.cpp.o.d"
  "bench/bench_fig3_alg2_wsl"
  "bench/bench_fig3_alg2_wsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_alg2_wsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
