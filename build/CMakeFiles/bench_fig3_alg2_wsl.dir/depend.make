# Empty dependencies file for bench_fig3_alg2_wsl.
# This may be replaced when dependencies are built.
