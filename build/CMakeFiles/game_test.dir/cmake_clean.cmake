file(REMOVE_RECURSE
  "CMakeFiles/game_test.dir/tests/game_test.cpp.o"
  "CMakeFiles/game_test.dir/tests/game_test.cpp.o.d"
  "game_test"
  "game_test.pdb"
  "game_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
