# Empty dependencies file for game_test.
# This may be replaced when dependencies are built.
