# Empty dependencies file for thread_registers_test.
# This may be replaced when dependencies are built.
