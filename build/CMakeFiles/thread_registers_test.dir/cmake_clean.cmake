file(REMOVE_RECURSE
  "CMakeFiles/thread_registers_test.dir/tests/thread_registers_test.cpp.o"
  "CMakeFiles/thread_registers_test.dir/tests/thread_registers_test.cpp.o.d"
  "thread_registers_test"
  "thread_registers_test.pdb"
  "thread_registers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_registers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
