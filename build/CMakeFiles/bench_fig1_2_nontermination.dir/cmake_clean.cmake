file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_2_nontermination.dir/bench/fig1_2_nontermination.cpp.o"
  "CMakeFiles/bench_fig1_2_nontermination.dir/bench/fig1_2_nontermination.cpp.o.d"
  "bench/bench_fig1_2_nontermination"
  "bench/bench_fig1_2_nontermination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_2_nontermination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
