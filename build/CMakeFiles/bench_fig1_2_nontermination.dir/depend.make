# Empty dependencies file for bench_fig1_2_nontermination.
# This may be replaced when dependencies are built.
