file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_theorem13.dir/bench/fig4_theorem13.cpp.o"
  "CMakeFiles/bench_fig4_theorem13.dir/bench/fig4_theorem13.cpp.o.d"
  "bench/bench_fig4_theorem13"
  "bench/bench_fig4_theorem13.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_theorem13.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
