# Empty dependencies file for bench_fig4_theorem13.
# This may be replaced when dependencies are built.
