# Empty dependencies file for mp_abd_test.
# This may be replaced when dependencies are built.
