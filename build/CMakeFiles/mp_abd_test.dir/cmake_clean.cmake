file(REMOVE_RECURSE
  "CMakeFiles/mp_abd_test.dir/tests/mp_abd_test.cpp.o"
  "CMakeFiles/mp_abd_test.dir/tests/mp_abd_test.cpp.o.d"
  "mp_abd_test"
  "mp_abd_test.pdb"
  "mp_abd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_abd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
