file(REMOVE_RECURSE
  "CMakeFiles/example_game_demo.dir/examples/game_demo.cpp.o"
  "CMakeFiles/example_game_demo.dir/examples/game_demo.cpp.o.d"
  "examples/example_game_demo"
  "examples/example_game_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_game_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
