# Empty dependencies file for example_game_demo.
# This may be replaced when dependencies are built.
