# Empty dependencies file for checker_test.
# This may be replaced when dependencies are built.
