file(REMOVE_RECURSE
  "CMakeFiles/checker_test.dir/tests/checker_test.cpp.o"
  "CMakeFiles/checker_test.dir/tests/checker_test.cpp.o.d"
  "checker_test"
  "checker_test.pdb"
  "checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
