file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_abd.dir/bench/perf_abd.cpp.o"
  "CMakeFiles/bench_perf_abd.dir/bench/perf_abd.cpp.o.d"
  "bench/bench_perf_abd"
  "bench/bench_perf_abd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_abd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
