# Empty dependencies file for bench_perf_abd.
# This may be replaced when dependencies are built.
