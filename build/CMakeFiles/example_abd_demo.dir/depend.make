# Empty dependencies file for example_abd_demo.
# This may be replaced when dependencies are built.
