file(REMOVE_RECURSE
  "CMakeFiles/example_abd_demo.dir/examples/abd_demo.cpp.o"
  "CMakeFiles/example_abd_demo.dir/examples/abd_demo.cpp.o.d"
  "examples/example_abd_demo"
  "examples/example_abd_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_abd_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
