file(REMOVE_RECURSE
  "CMakeFiles/bench_corollary9_composition.dir/bench/corollary9_composition.cpp.o"
  "CMakeFiles/bench_corollary9_composition.dir/bench/corollary9_composition.cpp.o.d"
  "bench/bench_corollary9_composition"
  "bench/bench_corollary9_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_corollary9_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
