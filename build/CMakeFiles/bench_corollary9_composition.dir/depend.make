# Empty dependencies file for bench_corollary9_composition.
# This may be replaced when dependencies are built.
