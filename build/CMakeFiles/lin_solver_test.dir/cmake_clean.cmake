file(REMOVE_RECURSE
  "CMakeFiles/lin_solver_test.dir/tests/lin_solver_test.cpp.o"
  "CMakeFiles/lin_solver_test.dir/tests/lin_solver_test.cpp.o.d"
  "lin_solver_test"
  "lin_solver_test.pdb"
  "lin_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lin_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
