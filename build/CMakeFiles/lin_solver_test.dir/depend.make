# Empty dependencies file for lin_solver_test.
# This may be replaced when dependencies are built.
